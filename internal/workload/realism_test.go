package workload

import (
	"math"
	"path/filepath"
	"sort"
	"testing"

	"specsimp/internal/coherence"
	"specsimp/internal/sim"
)

// ---- generator bug pins ----

// The reference that starts a burst must itself get the near-zero burst
// think time. Before the fix it kept its full geometric think, so a
// permanently bursting stream still averaged MeanThink every
// BurstLen-th reference.
func TestBurstStartingRefHasBurstThink(t *testing.T) {
	p := Uniform
	p.MeanThink = 500
	p.Burstiness = 1 // every non-burst ref starts a new burst
	p.BurstLen = 4
	p.MigratoryFrac = 0
	g := New(p, 0, 16, 21)
	for i := 0; i < 5000; i++ {
		if th := g.Peek().Think; th > 1 {
			t.Fatalf("ref %d has think %d inside a permanent burst (burst-starting ref kept its geometric think)", i, th)
		}
		g.Advance()
	}
}

// Counting consecutive near-zero-think references pins the burst length:
// a BurstLen-8 burst must span exactly 8 references. The migratory store
// half counts as a reference too (it used to skip the decrement,
// silently doubling bursts — see TestMigratoryStoreConsumesBurstSlot).
func TestBurstLengthByCountingNearZeroThinkRuns(t *testing.T) {
	p := Uniform
	p.MeanThink = 400 // P(geometric think <= 1) ~ 0.5%: bursts stand out
	p.Burstiness = 0.2
	p.BurstLen = 8
	p.MigratoryFrac = 0
	g := New(p, 0, 16, 33)
	var runs []int
	cur := 0
	for i := 0; i < 60000; i++ {
		if g.Peek().Think <= 1 {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
		g.Advance()
	}
	if len(runs) < 50 {
		t.Fatalf("only %d bursts observed", len(runs))
	}
	sort.Ints(runs)
	if median := runs[len(runs)/2]; median != p.BurstLen {
		t.Fatalf("median near-zero-think run is %d refs, want BurstLen %d", median, p.BurstLen)
	}
}

// The migratory store half is a reference like any other, so it must
// consume a burst slot. With every shared reference a migratory pair
// and permanent bursting, the burst counter must cycle with period
// BurstLen exactly — before the fix the store halves skipped the
// decrement and the cycle was 2×BurstLen.
func TestMigratoryStoreConsumesBurstSlot(t *testing.T) {
	p := Uniform
	p.SharedFrac = 1
	p.MigratoryFrac = 1
	p.Burstiness = 1
	p.BurstLen = 6
	g := New(p, 0, 16, 5).(*gen)
	want := p.BurstLen - 1 // nextThink arms then decrements for the current ref
	for i := 0; i < 600; i++ {
		if g.burst != want {
			t.Fatalf("ref %d: burst counter %d, want %d (store halves must decrement)", i, g.burst, want)
		}
		g.Advance()
		want--
		if want < 0 {
			want = p.BurstLen - 1
		}
	}
}

// Per-node seeds come from a SplitMix64 finalizer now. The old
// derivation — seed ^ (node+1)*0x9e37 — made these two streams
// literally identical.
func TestSeedMixingHasNoLinearCollisions(t *testing.T) {
	a := New(OLTP, 3, 16, 0)
	b := New(OLTP, 0, 16, (4*0x9e37)^(1*0x9e37))
	same := 0
	for i := 0; i < 200; i++ {
		if a.Peek() == b.Peek() {
			same++
		}
		a.Advance()
		b.Advance()
	}
	if same == 200 {
		t.Fatal("old-scheme seed collision survived: (node 3, seed 0) == (node 0, seed 0x9e37*4^0x9e37)")
	}
	if mixSeed(42, 3) == mixSeed(42, 4) {
		t.Fatal("adjacent nodes share a seed")
	}
}

// ---- Zipf sampling ----

func TestZipfFrequencySanity(t *testing.T) {
	const n = 1024
	const draws = 300_000
	for _, s := range []float64{0.8, 1.0, 1.4} {
		z := newZipf(s, n)
		rng := sim.NewRNG(7)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			k := z.sample(rng)
			if k < 0 || k >= n {
				t.Fatalf("s=%g: sample %d out of [0,%d)", s, k, n)
			}
			counts[k]++
		}
		// P(0)/P(1) must be 2^s.
		ratio := float64(counts[0]) / float64(counts[1])
		if want := math.Pow(2, s); ratio < want*0.85 || ratio > want*1.15 {
			t.Errorf("s=%g: rank0/rank1 frequency ratio %.2f, want ~%.2f", s, ratio, want)
		}
		// Head ranks dominate deep tail ranks.
		if counts[0] <= counts[50] || counts[50] <= counts[700] {
			t.Errorf("s=%g: counts not skewed: c0=%d c50=%d c700=%d", s, counts[0], counts[50], counts[700])
		}
		// And the whole-distribution shape: observed rank-0 mass within
		// 15%% of 1/H_{n,s}.
		var h float64
		for k := 1; k <= n; k++ {
			h += math.Exp(-s * math.Log(float64(k)))
		}
		p0 := float64(counts[0]) / draws
		if want := 1 / h; p0 < want*0.85 || p0 > want*1.15 {
			t.Errorf("s=%g: rank-0 mass %.4f, want ~%.4f", s, p0, want)
		}
	}
}

func TestBlockPermIsBijection(t *testing.T) {
	for _, n := range []int{2, 7, 64, 1000, 4096} {
		perm := newBlockPerm(n, 0xfeedface)
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			j := perm.apply(i)
			if j < 0 || j >= n {
				t.Fatalf("n=%d: apply(%d)=%d out of range", n, i, j)
			}
			if seen[j] {
				t.Fatalf("n=%d: apply not injective at %d -> %d", n, i, j)
			}
			seen[j] = true
		}
	}
}

// Zipf-skewed streams keep every shared reference inside the shared
// region and actually concentrate references on a machine-wide hot set:
// two nodes' most-frequent shared blocks must overlap (the rank
// permutation is keyed on the run seed, not the node).
func TestZipfStreamSharesHotBlocksAcrossNodes(t *testing.T) {
	p := OLTP
	p.ZipfSkew = 1.2
	top := func(node int) map[coherence.Addr]bool {
		g := New(p, node, 16, 3)
		counts := map[coherence.Addr]int{}
		sharedTop := coherence.Addr(p.SharedBlocks * coherence.BlockBytes)
		for i := 0; i < 30000; i++ {
			if op := g.Peek(); op.Addr < sharedTop {
				counts[op.Addr]++
			}
			g.Advance()
		}
		type kv struct {
			a coherence.Addr
			n int
		}
		var all []kv
		for a, n := range counts {
			all = append(all, kv{a, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].a < all[j].a
		})
		out := map[coherence.Addr]bool{}
		for i := 0; i < 5 && i < len(all); i++ {
			out[all[i].a] = true
		}
		return out
	}
	t0, t1 := top(0), top(5)
	overlap := 0
	for a := range t0 {
		if t1[a] {
			overlap++
		}
	}
	if overlap < 3 {
		t.Fatalf("top-5 hot blocks of nodes 0 and 5 overlap only %d/5 — hot set is not machine-wide", overlap)
	}
}

// Phase shifts must move the hot set: the dominant shared blocks of an
// early phase and a late phase must differ.
func TestPhaseShiftMovesHotSet(t *testing.T) {
	p := Hotspot
	p.PhaseLen = 2048
	p.Burstiness = 0
	g := New(p, 0, 16, 17)
	window := func(refs int) map[coherence.Addr]int {
		counts := map[coherence.Addr]int{}
		sharedTop := coherence.Addr(p.SharedBlocks * coherence.BlockBytes)
		for i := 0; i < refs; i++ {
			if op := g.Peek(); op.Addr < sharedTop {
				counts[op.Addr]++
			}
			g.Advance()
		}
		return counts
	}
	peak := func(counts map[coherence.Addr]int) coherence.Addr {
		var best coherence.Addr
		bestN := -1
		for a, n := range counts {
			if n > bestN || (n == bestN && a < best) {
				best, bestN = a, n
			}
		}
		return best
	}
	first := peak(window(2000))
	window(2048) // skip across the phase boundary
	second := peak(window(2000))
	if first == second {
		t.Fatalf("hot-set peak %#x did not move across a phase shift", uint64(first))
	}
}

// ---- snapshot/restore across every generator ----

// assertReplays snapshots g, records the next n ops, restores, and
// demands an identical replay.
func assertReplays(t *testing.T, g Generator, n int, what string) {
	t.Helper()
	snap := g.Snapshot()
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = g.Peek()
		g.Advance()
	}
	g.Restore(snap)
	for i, want := range ops {
		if got := g.Peek(); got != want {
			t.Fatalf("%s: replay diverged at op %d: %+v vs %+v", what, i, got, want)
		}
		g.Advance()
	}
}

// Every registered generator — profiles, idioms, and Zipf/phase
// variants — must replay exactly from snapshots taken mid-burst,
// mid-migratory-pair, and mid-phase-shift.
func TestSnapshotRestoreEveryGenerator(t *testing.T) {
	var profiles []Profile
	for _, name := range Names() {
		p, _ := ByName(name)
		profiles = append(profiles, p)
		if p.SharedBlocks >= 2 {
			z := p
			z.Name = p.Name + "-zipf"
			z.ZipfSkew = 1.1
			z.PhaseLen = 512
			profiles = append(profiles, z)
		}
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g := New(p, 1, 8, 77)
			// Arbitrary points, including ones crossing the 512-ref
			// phase boundary of the -zipf variants.
			for _, prefix := range []int{0, 100, 450, 600} {
				for i := 0; i < prefix; i++ {
					g.Advance()
				}
				assertReplays(t, g, 200, "prefix")
			}
			// Mid-burst: walk to a point with the burst counter live.
			for i := 0; i < 200_000; i++ {
				if mid, ok := midBurst(g); ok && mid {
					break
				}
				g.Advance()
			}
			assertReplays(t, g, 200, "mid-burst")
			// Mid-migratory-pair: the store half still pending.
			for i := 0; i < 200_000; i++ {
				if mid, ok := midMigratory(g); ok && mid {
					break
				}
				g.Advance()
			}
			assertReplays(t, g, 200, "mid-migratory")
		})
	}
}

func midBurst(g Generator) (mid, ok bool) {
	switch v := g.(type) {
	case *gen:
		return v.burst > 0, true
	case *idiomGen:
		return v.burst > 0, true
	}
	return false, false
}

func midMigratory(g Generator) (mid, ok bool) {
	switch v := g.(type) {
	case *gen:
		return v.migrLeft > 0, true
	case *idiomGen:
		return v.migrLeft > 0, true
	}
	return false, false
}

// ---- idiom stream shape ----

// Ring: node i's produced (stored) blocks must be exactly what node
// i+1 consumes (loads), under static hot sets.
func TestRingProducerConsumerPairing(t *testing.T) {
	p := Ring
	p.SharedFrac = 1
	p.Burstiness = 0
	const nodes = 8
	blocksOf := func(node int, kind coherence.AccessType) map[coherence.Addr]bool {
		g := New(p, node, nodes, 9)
		out := map[coherence.Addr]bool{}
		sharedTop := coherence.Addr(p.SharedBlocks * coherence.BlockBytes)
		for i := 0; i < 4000; i++ {
			if op := g.Peek(); op.Kind == kind && op.Addr < sharedTop {
				out[op.Addr] = true
			}
			g.Advance()
		}
		return out
	}
	produced := blocksOf(2, coherence.Store)
	consumed := blocksOf(3, coherence.Load)
	if len(produced) == 0 || len(consumed) == 0 {
		t.Fatal("ring idiom produced no shared traffic")
	}
	for a := range consumed {
		if !produced[a] {
			t.Fatalf("node 3 consumes block %#x that node 2 never produces", uint64(a))
		}
	}
}

// Broadcast: only node 0 stores to the shared region; everyone else
// only loads it.
func TestBroadcastSingleWriter(t *testing.T) {
	p := Broadcast
	sharedTop := coherence.Addr(p.SharedBlocks * coherence.BlockBytes)
	for node := 0; node < 4; node++ {
		g := New(p, node, 4, 13)
		for i := 0; i < 5000; i++ {
			op := g.Peek()
			if op.Addr < sharedTop {
				if node == 0 && op.Kind != coherence.Store {
					t.Fatal("node 0 must only store the broadcast set")
				}
				if node != 0 && op.Kind != coherence.Load {
					t.Fatalf("node %d stored the broadcast set", node)
				}
			}
			g.Advance()
		}
	}
}

// Migratory idiom: every shared access is a load-then-store pair on one
// block.
func TestMigratoryIdiomPairs(t *testing.T) {
	p := MigratoryChain
	g := New(p, 1, 8, 23).(*idiomGen)
	sharedTop := coherence.Addr(p.SharedBlocks * coherence.BlockBytes)
	pairs := 0
	for i := 0; i < 20000; i++ {
		op := g.Peek()
		if op.Addr < sharedTop && op.Kind == coherence.Load {
			if g.migrLeft != 1 {
				t.Fatal("shared load without a pending store half")
			}
			g.Advance()
			next := g.Peek()
			if next.Kind != coherence.Store || next.Addr != op.Addr {
				t.Fatalf("migratory pair broken: %+v then %+v", op, next)
			}
			pairs++
			continue
		}
		g.Advance()
	}
	if pairs == 0 {
		t.Fatal("no migratory pairs observed")
	}
}

// Every idiom and the trace generator stay inside the profile's address
// space (the system sizes memory from it).
func TestIdiomAddressBounds(t *testing.T) {
	const nodes = 8
	for _, p := range Idioms {
		g := New(p, nodes-1, nodes, 31)
		limit := coherence.Addr((p.SharedBlocks + nodes*p.PrivateBlocks) * coherence.BlockBytes)
		for i := 0; i < 10000; i++ {
			op := g.Peek()
			if op.Addr%coherence.BlockBytes != 0 || op.Addr >= limit {
				t.Fatalf("%s: address %#x out of bounds/alignment", p.Name, uint64(op.Addr))
			}
			g.Advance()
		}
	}
}

// ---- trace record/replay ----

// Recording a stream and replaying the trace must reproduce it op for
// op (including the still-pending op at the recording horizon), and the
// replay generator must snapshot/restore exactly.
func TestTraceRoundTripStream(t *testing.T) {
	p := Slash
	const nodes = 4
	rec := NewTraceRecorder(p.Name, nodes)
	wrapped := make([]Generator, nodes)
	for i := range wrapped {
		wrapped[i] = rec.Wrap(i, New(p, i, nodes, 11))
	}
	const ops = 2000
	want := make([][]Op, nodes)
	for i, g := range wrapped {
		for j := 0; j < ops; j++ {
			want[i] = append(want[i], g.Peek())
			g.Advance()
		}
		want[i] = append(want[i], g.Peek()) // the pending op is recorded too
	}

	path := filepath.Join(t.TempDir(), "slash.trace")
	if err := rec.Trace().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	prof, err := FromTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !prof.IsTrace() {
		t.Fatal("trace profile not marked as trace")
	}
	if prof.Name != "trace:"+p.Name {
		t.Fatalf("trace profile named %q — must be path-independent", prof.Name)
	}
	for i := 0; i < nodes; i++ {
		g := New(prof, i, nodes, 999) // seed must not matter for replay
		for j, wantOp := range want[i] {
			if got := g.Peek(); got != wantOp {
				t.Fatalf("node %d op %d: replay %+v != recorded %+v", i, j, got, wantOp)
			}
			g.Advance()
		}
	}
	// Replay snapshot/restore, including across the wrap point.
	g := New(prof, 2, nodes, 0)
	for i := 0; i < ops-50; i++ {
		g.Advance()
	}
	assertReplays(t, g, 200, "trace wrap")
}

// Restore must rewind the recorder's log too: a rollback followed by
// re-execution records the replayed ops once, not twice.
func TestTraceRecorderRewindsOnRestore(t *testing.T) {
	p := Uniform
	rec := NewTraceRecorder(p.Name, 1)
	g := rec.Wrap(0, New(p, 0, 1, 3))
	for i := 0; i < 100; i++ {
		g.Advance()
	}
	snap := g.Snapshot()
	var replayed []Op
	for i := 0; i < 50; i++ {
		replayed = append(replayed, g.Peek())
		g.Advance()
	}
	g.Restore(snap)
	for i := 0; i < 50; i++ {
		if g.Peek() != replayed[i] {
			t.Fatal("post-restore stream diverged")
		}
		g.Advance()
	}
	tr := rec.Trace()
	if tr.Ops(0) != 151 { // 150 advances + the pending op
		t.Fatalf("recorded %d ops, want 151 (rollback must not double-log)", tr.Ops(0))
	}
}

func TestReadTraceRejectsCorruptImages(t *testing.T) {
	rec := NewTraceRecorder("x", 2)
	for i := 0; i < 2; i++ {
		g := rec.Wrap(i, New(Uniform, i, 2, 1))
		for j := 0; j < 20; j++ {
			g.Advance()
		}
	}
	data := rec.Trace().Encode()
	if _, err := ReadTrace(data); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}
	if _, err := ReadTrace(data[:3]); err == nil {
		t.Error("truncated magic accepted")
	}
	if _, err := ReadTrace(append([]byte("XXXXX"), data[5:]...)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadTrace(data[:len(data)-4]); err == nil {
		t.Error("truncated stream accepted")
	}
}
