// Package workload generates deterministic, checkpointable memory
// reference streams that stand in for the paper's Table 3 workloads
// (the Wisconsin Commercial Workload Suite plus SPLASH-2 barnes).
//
// The paper drove its memory-system simulator with Simics full-system
// traces of DB2/TPC-C, SPECjbb2000, Apache/SURGE, Slashcode and barnes.
// Those traces are unobtainable; what the experiments actually consume
// is the *structure* of each reference stream — working-set sizes,
// read/write mix, degree and style of sharing (lock hotspots, migratory
// objects), and burstiness. Each Profile below parameterizes exactly
// those properties; the five presets are tuned to the workloads'
// qualitative characters as described in the paper and the methodology
// companion (Alameldeen et al., IEEE Computer 2003). DESIGN.md records
// this substitution.
//
// Generators are deterministic functions of their seed and support
// snapshot/restore, which SafetyNet recovery requires: a rolled-back
// processor must replay exactly the reference stream it produced before.
package workload

import (
	"fmt"

	"specsimp/internal/coherence"
	"specsimp/internal/sim"
)

// Op is one memory reference plus the think time (non-memory
// instructions, at 1 IPC) preceding it.
type Op struct {
	Addr  coherence.Addr
	Kind  coherence.AccessType
	Think sim.Time
}

// Generator produces a deterministic reference stream. Peek returns the
// current operation without consuming it; Advance moves on. Snapshot
// and Restore capture and rewind the full generator state.
type Generator interface {
	Name() string
	Peek() Op
	Advance()
	Snapshot() Snapshot
	Restore(Snapshot)
}

// Snapshot is an opaque generator checkpoint.
type Snapshot struct {
	rng      uint64
	cur      Op
	burst    int
	migrAddr coherence.Addr
	migrLeft int
	pos      uint64
}

// Profile parameterizes the synthetic reference stream.
type Profile struct {
	Name        string
	Description string

	// SharedBlocks is the size of the globally shared region in blocks;
	// PrivateBlocks is each node's private region.
	SharedBlocks  int
	PrivateBlocks int

	// SharedFrac is the fraction of references to the shared region.
	SharedFrac float64
	// HotFrac is the fraction of *shared* references that hit the small
	// hot set (locks, allocator metadata) of HotBlocks blocks.
	HotFrac   float64
	HotBlocks int

	// StoreFrac and PrivateStoreFrac are the store fractions in the
	// shared and private regions.
	StoreFrac        float64
	PrivateStoreFrac float64

	// MigratoryFrac is the fraction of shared references that begin a
	// migratory read-modify-write pair (load then store to one block) —
	// the classic commercial-workload sharing pattern.
	MigratoryFrac float64

	// MeanThink is the mean think time between references in cycles
	// (geometric). Burstiness enters a BurstLen-reference burst with
	// near-zero think with the given probability.
	MeanThink  float64
	Burstiness float64
	BurstLen   int
}

// Validate reports obviously broken profiles.
func (p Profile) Validate() error {
	if p.SharedBlocks <= 0 || p.PrivateBlocks <= 0 {
		return fmt.Errorf("workload %s: block counts must be positive", p.Name)
	}
	if p.MeanThink < 1 {
		return fmt.Errorf("workload %s: MeanThink must be >= 1", p.Name)
	}
	return nil
}

// The five paper workloads (Table 3), plus two synthetic calibration
// profiles. Address regions: shared blocks occupy the low addresses;
// each node's private region follows.
var (
	// OLTP models DB2/TPC-C: large shared footprint, heavy lock
	// hotspotting, migratory row updates, bursty transaction structure.
	OLTP = Profile{
		Name:         "oltp",
		Description:  "TPC-C-like online transaction processing (DB2): migratory rows, hot locks, bursty",
		SharedBlocks: 8192, PrivateBlocks: 2048,
		SharedFrac: 0.45, HotFrac: 0.18, HotBlocks: 24,
		StoreFrac: 0.38, PrivateStoreFrac: 0.30,
		MigratoryFrac: 0.35,
		MeanThink:     12, Burstiness: 0.04, BurstLen: 24,
	}
	// JBB models SPECjbb2000: warehouse-per-thread locality, modest
	// sharing through the object allocator.
	JBB = Profile{
		Name:         "jbb",
		Description:  "SPECjbb2000-like Java server: mostly private warehouses, allocator sharing",
		SharedBlocks: 4096, PrivateBlocks: 4096,
		SharedFrac: 0.18, HotFrac: 0.10, HotBlocks: 12,
		StoreFrac: 0.30, PrivateStoreFrac: 0.35,
		MigratoryFrac: 0.20,
		MeanThink:     10, Burstiness: 0.02, BurstLen: 16,
	}
	// Apache models the static web server: read-mostly shared file
	// cache with lock metadata.
	Apache = Profile{
		Name:         "apache",
		Description:  "Apache/SURGE-like static web serving: read-mostly shared file cache",
		SharedBlocks: 6144, PrivateBlocks: 1536,
		SharedFrac: 0.55, HotFrac: 0.12, HotBlocks: 16,
		StoreFrac: 0.12, PrivateStoreFrac: 0.25,
		MigratoryFrac: 0.08,
		MeanThink:     9, Burstiness: 0.05, BurstLen: 32,
	}
	// Slash models Slashcode: dynamic content generation over a shared
	// database — between OLTP and Apache in write intensity.
	Slash = Profile{
		Name:         "slashcode",
		Description:  "Slashcode-like dynamic web serving: mixed read/write shared database",
		SharedBlocks: 6144, PrivateBlocks: 2048,
		SharedFrac: 0.40, HotFrac: 0.14, HotBlocks: 16,
		StoreFrac: 0.25, PrivateStoreFrac: 0.28,
		MigratoryFrac: 0.22,
		MeanThink:     11, Burstiness: 0.03, BurstLen: 20,
	}
	// Barnes models SPLASH-2 barnes-hut: phases of private compute over
	// a read-shared tree with occasional shared updates.
	Barnes = Profile{
		Name:         "barnes",
		Description:  "SPLASH-2 barnes-hut-like N-body phases: read-shared tree, private compute",
		SharedBlocks: 4096, PrivateBlocks: 3072,
		SharedFrac: 0.30, HotFrac: 0.05, HotBlocks: 8,
		StoreFrac: 0.15, PrivateStoreFrac: 0.40,
		MigratoryFrac: 0.10,
		MeanThink:     14, Burstiness: 0.06, BurstLen: 40,
	}
	// Uniform is a calibration profile: uniform shared traffic.
	Uniform = Profile{
		Name:         "uniform",
		Description:  "synthetic uniform random traffic (calibration)",
		SharedBlocks: 4096, PrivateBlocks: 1024,
		SharedFrac: 0.5, HotFrac: 0, HotBlocks: 1,
		StoreFrac: 0.5, PrivateStoreFrac: 0.5,
		MigratoryFrac: 0,
		MeanThink:     8, Burstiness: 0, BurstLen: 1,
	}
	// Hotspot is a calibration profile that hammers a few blocks.
	Hotspot = Profile{
		Name:         "hotspot",
		Description:  "synthetic hotspot traffic (calibration)",
		SharedBlocks: 512, PrivateBlocks: 512,
		SharedFrac: 0.8, HotFrac: 0.5, HotBlocks: 4,
		StoreFrac: 0.6, PrivateStoreFrac: 0.4,
		MigratoryFrac: 0.3,
		MeanThink:     6, Burstiness: 0.1, BurstLen: 16,
	}
)

// Suite is the paper's evaluation set in figure order.
var Suite = []Profile{JBB, Apache, Slash, OLTP, Barnes}

// ByName returns the named profile (including the calibration ones).
func ByName(name string) (Profile, bool) {
	for _, p := range append(append([]Profile{}, Suite...), Uniform, Hotspot) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// gen implements Generator for a Profile.
type gen struct {
	p     Profile
	node  int
	nodes int
	rng   *sim.RNG

	cur      Op
	burst    int // references left in the current burst
	migrAddr coherence.Addr
	migrLeft int // 1 = the store half of a migratory pair is pending
	pos      uint64
}

// New builds the generator for one node. Streams for different nodes
// and seeds are independent.
func New(p Profile, node, nodes int, seed uint64) Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &gen{p: p, node: node, nodes: nodes, rng: sim.NewRNG(seed ^ (uint64(node)+1)*0x9e37)}
	g.generate()
	return g
}

// Name implements Generator.
func (g *gen) Name() string { return g.p.Name }

// Peek implements Generator.
func (g *gen) Peek() Op { return g.cur }

// Advance implements Generator.
func (g *gen) Advance() {
	g.pos++
	g.generate()
}

// Position returns the count of consumed operations (for tests).
func (g *gen) Position() uint64 { return g.pos }

func (g *gen) generate() {
	p := g.p
	// Pending migratory store half: same block, store, tiny think.
	if g.migrLeft > 0 {
		g.migrLeft = 0
		g.cur = Op{Addr: g.migrAddr, Kind: coherence.Store, Think: 1 + sim.Time(g.rng.Intn(3))}
		return
	}
	think := sim.Time(g.rng.Geometric(p.MeanThink))
	if g.burst > 0 {
		g.burst--
		think = sim.Time(g.rng.Intn(2))
	} else if g.rng.Bool(p.Burstiness) {
		g.burst = p.BurstLen
	}

	var addr coherence.Addr
	var kind coherence.AccessType
	if g.rng.Bool(p.SharedFrac) {
		// Shared region at the bottom of the address space.
		var blk int
		if g.rng.Bool(p.HotFrac) {
			blk = g.rng.Intn(p.HotBlocks)
		} else {
			blk = g.rng.Intn(p.SharedBlocks)
		}
		addr = coherence.Addr(blk) * coherence.BlockBytes
		if g.rng.Bool(p.MigratoryFrac) {
			// Read-modify-write: emit the load now, the store next.
			g.migrAddr = addr
			g.migrLeft = 1
			g.cur = Op{Addr: addr, Kind: coherence.Load, Think: think}
			return
		}
		kind = coherence.Load
		if g.rng.Bool(p.StoreFrac) {
			kind = coherence.Store
		}
	} else {
		base := p.SharedBlocks + g.node*p.PrivateBlocks
		addr = coherence.Addr(base+g.rng.Intn(p.PrivateBlocks)) * coherence.BlockBytes
		kind = coherence.Load
		if g.rng.Bool(p.PrivateStoreFrac) {
			kind = coherence.Store
		}
	}
	g.cur = Op{Addr: addr, Kind: kind, Think: think}
}

// Snapshot implements Generator.
func (g *gen) Snapshot() Snapshot {
	return Snapshot{
		rng: g.rng.Snapshot(), cur: g.cur,
		burst: g.burst, migrAddr: g.migrAddr, migrLeft: g.migrLeft, pos: g.pos,
	}
}

// Restore implements Generator.
func (g *gen) Restore(s Snapshot) {
	g.rng.Restore(s.rng)
	g.cur = s.cur
	g.burst = s.burst
	g.migrAddr = s.migrAddr
	g.migrLeft = s.migrLeft
	g.pos = s.pos
}
