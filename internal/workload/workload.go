// Package workload generates deterministic, checkpointable memory
// reference streams that stand in for the paper's Table 3 workloads
// (the Wisconsin Commercial Workload Suite plus SPLASH-2 barnes).
//
// The paper drove its memory-system simulator with Simics full-system
// traces of DB2/TPC-C, SPECjbb2000, Apache/SURGE, Slashcode and barnes.
// Those traces are unobtainable; what the experiments actually consume
// is the *structure* of each reference stream — working-set sizes,
// read/write mix, degree and style of sharing (lock hotspots, migratory
// objects), and burstiness. Each Profile below parameterizes exactly
// those properties; the five presets are tuned to the workloads'
// qualitative characters as described in the paper and the methodology
// companion (Alameldeen et al., IEEE Computer 2003). DESIGN.md records
// this substitution.
//
// Beyond the calibrated profiles the package provides the workload-
// realism layer: Zipf-parameterized shared-address skew with a per-seed
// rank-to-block permutation (zipf.go), phase-shifting hot sets
// (Profile.PhaseLen), sharing-idiom generators — migratory chains,
// producer-consumer rings, all-to-all scans, single-writer broadcast
// (idioms.go) — and a compact binary trace format for bit-identical
// record/replay (trace.go).
//
// Generators are deterministic functions of their seed and support
// snapshot/restore, which SafetyNet recovery requires: a rolled-back
// processor must replay exactly the reference stream it produced before.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"specsimp/internal/coherence"
	"specsimp/internal/sim"
)

// Op is one memory reference plus the think time (non-memory
// instructions, at 1 IPC) preceding it.
type Op struct {
	Addr  coherence.Addr
	Kind  coherence.AccessType
	Think sim.Time
}

// Generator produces a deterministic reference stream. Peek returns the
// current operation without consuming it; Advance moves on. Snapshot
// and Restore capture and rewind the full generator state.
type Generator interface {
	Name() string
	Peek() Op
	Advance()
	Snapshot() Snapshot
	Restore(Snapshot)
}

// Snapshot is an opaque generator checkpoint. It is a flat value type
// (no slices or pointers) so processor snapshots copy and compare
// trivially; aux0/aux1 carry the idiom and trace generators' cursor
// state (ring produce/consume cursors, scan index, trace byte offset).
type Snapshot struct {
	rng      uint64
	cur      Op
	burst    int
	migrAddr coherence.Addr
	migrLeft int
	pos      uint64
	aux0     uint64
	aux1     uint64
}

// Profile parameterizes the synthetic reference stream.
type Profile struct {
	Name        string
	Description string

	// SharedBlocks is the size of the globally shared region in blocks;
	// PrivateBlocks is each node's private region.
	SharedBlocks  int
	PrivateBlocks int

	// SharedFrac is the fraction of references to the shared region.
	SharedFrac float64
	// HotFrac is the fraction of *shared* references that hit the small
	// hot set (locks, allocator metadata) of HotBlocks blocks.
	HotFrac   float64
	HotBlocks int

	// StoreFrac and PrivateStoreFrac are the store fractions in the
	// shared and private regions.
	StoreFrac        float64
	PrivateStoreFrac float64

	// MigratoryFrac is the fraction of shared references that begin a
	// migratory read-modify-write pair (load then store to one block) —
	// the classic commercial-workload sharing pattern.
	MigratoryFrac float64

	// MeanThink is the mean think time between references in cycles
	// (geometric). Burstiness enters a BurstLen-reference burst with
	// near-zero think with the given probability.
	MeanThink  float64
	Burstiness float64
	BurstLen   int

	// ZipfSkew, when > 0, draws shared-region block ranks from a Zipf
	// distribution with this exponent instead of the uniform/hot-set
	// split: rank r is referenced with probability ∝ 1/(r+1)^s. Ranks
	// map to blocks through a per-seed pseudo-random permutation (shared
	// by every node, so the hot ranks are the same contended blocks
	// machine-wide but land on different blocks per seed).
	ZipfSkew float64

	// PhaseLen, when > 0, rotates the hot set every PhaseLen references:
	// the hot ranks (Zipf) or the hot-block window (uniform/hot split)
	// migrate to a new deterministic region of the shared space each
	// phase, derived from the stream seed. 0 keeps the hot set static.
	PhaseLen uint64

	// Idiom selects a sharing-idiom generator instead of the mixed
	// profile stream: "migratory" (read-modify-write chains walking a
	// shared object sequence), "ring" (node i writes a ring segment that
	// node i+1 reads), "scan" (all-to-all sequential scan phases
	// alternating with private compute), "broadcast" (node 0 writes a
	// small set every other node reads). Empty is the profile stream.
	// See idioms.go.
	Idiom string

	// trace, when non-nil, makes New replay the recorded per-node
	// streams verbatim (FromTrace / ByName "trace:<path>"); every other
	// stream parameter above is ignored.
	trace *Trace
}

// IsTrace reports whether the profile replays a recorded trace rather
// than generating a synthetic stream.
func (p Profile) IsTrace() bool { return p.trace != nil }

// Validate reports obviously broken profiles.
func (p Profile) Validate() error {
	if p.trace != nil {
		return nil // the trace carries its own, already-decoded streams
	}
	if p.SharedBlocks <= 0 || p.PrivateBlocks <= 0 {
		return fmt.Errorf("workload %s: block counts must be positive", p.Name)
	}
	if p.MeanThink < 1 {
		return fmt.Errorf("workload %s: MeanThink must be >= 1", p.Name)
	}
	if p.ZipfSkew < 0 {
		return fmt.Errorf("workload %s: ZipfSkew must be >= 0", p.Name)
	}
	if p.ZipfSkew > 0 && p.SharedBlocks < 2 {
		return fmt.Errorf("workload %s: ZipfSkew needs SharedBlocks >= 2", p.Name)
	}
	switch p.Idiom {
	case "", IdiomMigratory, IdiomRing, IdiomScan, IdiomBroadcast:
	default:
		return fmt.Errorf("workload %s: unknown Idiom %q (want %s)", p.Name, p.Idiom, strings.Join(IdiomNames, ", "))
	}
	return nil
}

// The five paper workloads (Table 3), plus two synthetic calibration
// profiles. Address regions: shared blocks occupy the low addresses;
// each node's private region follows.
var (
	// OLTP models DB2/TPC-C: large shared footprint, heavy lock
	// hotspotting, migratory row updates, bursty transaction structure.
	OLTP = Profile{
		Name:         "oltp",
		Description:  "TPC-C-like online transaction processing (DB2): migratory rows, hot locks, bursty",
		SharedBlocks: 8192, PrivateBlocks: 2048,
		SharedFrac: 0.45, HotFrac: 0.18, HotBlocks: 24,
		StoreFrac: 0.38, PrivateStoreFrac: 0.30,
		MigratoryFrac: 0.35,
		MeanThink:     12, Burstiness: 0.04, BurstLen: 24,
	}
	// JBB models SPECjbb2000: warehouse-per-thread locality, modest
	// sharing through the object allocator.
	JBB = Profile{
		Name:         "jbb",
		Description:  "SPECjbb2000-like Java server: mostly private warehouses, allocator sharing",
		SharedBlocks: 4096, PrivateBlocks: 4096,
		SharedFrac: 0.18, HotFrac: 0.10, HotBlocks: 12,
		StoreFrac: 0.30, PrivateStoreFrac: 0.35,
		MigratoryFrac: 0.20,
		MeanThink:     10, Burstiness: 0.02, BurstLen: 16,
	}
	// Apache models the static web server: read-mostly shared file
	// cache with lock metadata.
	Apache = Profile{
		Name:         "apache",
		Description:  "Apache/SURGE-like static web serving: read-mostly shared file cache",
		SharedBlocks: 6144, PrivateBlocks: 1536,
		SharedFrac: 0.55, HotFrac: 0.12, HotBlocks: 16,
		StoreFrac: 0.12, PrivateStoreFrac: 0.25,
		MigratoryFrac: 0.08,
		MeanThink:     9, Burstiness: 0.05, BurstLen: 32,
	}
	// Slash models Slashcode: dynamic content generation over a shared
	// database — between OLTP and Apache in write intensity.
	Slash = Profile{
		Name:         "slashcode",
		Description:  "Slashcode-like dynamic web serving: mixed read/write shared database",
		SharedBlocks: 6144, PrivateBlocks: 2048,
		SharedFrac: 0.40, HotFrac: 0.14, HotBlocks: 16,
		StoreFrac: 0.25, PrivateStoreFrac: 0.28,
		MigratoryFrac: 0.22,
		MeanThink:     11, Burstiness: 0.03, BurstLen: 20,
	}
	// Barnes models SPLASH-2 barnes-hut: phases of private compute over
	// a read-shared tree with occasional shared updates.
	Barnes = Profile{
		Name:         "barnes",
		Description:  "SPLASH-2 barnes-hut-like N-body phases: read-shared tree, private compute",
		SharedBlocks: 4096, PrivateBlocks: 3072,
		SharedFrac: 0.30, HotFrac: 0.05, HotBlocks: 8,
		StoreFrac: 0.15, PrivateStoreFrac: 0.40,
		MigratoryFrac: 0.10,
		MeanThink:     14, Burstiness: 0.06, BurstLen: 40,
	}
	// Uniform is a calibration profile: uniform shared traffic.
	Uniform = Profile{
		Name:         "uniform",
		Description:  "synthetic uniform random traffic (calibration)",
		SharedBlocks: 4096, PrivateBlocks: 1024,
		SharedFrac: 0.5, HotFrac: 0, HotBlocks: 1,
		StoreFrac: 0.5, PrivateStoreFrac: 0.5,
		MigratoryFrac: 0,
		MeanThink:     8, Burstiness: 0, BurstLen: 1,
	}
	// Hotspot is a calibration profile that hammers a few blocks.
	Hotspot = Profile{
		Name:         "hotspot",
		Description:  "synthetic hotspot traffic (calibration)",
		SharedBlocks: 512, PrivateBlocks: 512,
		SharedFrac: 0.8, HotFrac: 0.5, HotBlocks: 4,
		StoreFrac: 0.6, PrivateStoreFrac: 0.4,
		MigratoryFrac: 0.3,
		MeanThink:     6, Burstiness: 0.1, BurstLen: 16,
	}
)

// Suite is the paper's evaluation set in figure order.
var Suite = []Profile{JBB, Apache, Slash, OLTP, Barnes}

// registry is the package-level name → profile table behind ByName:
// the suite, the calibration profiles, and the sharing-idiom streams,
// sorted by name once at init (a deterministic slice, not a map, per
// the maporder contract) so lookups allocate nothing.
var registry = buildRegistry()

func buildRegistry() []Profile {
	all := make([]Profile, 0, len(Suite)+2+len(Idioms))
	all = append(all, Suite...)
	all = append(all, Uniform, Hotspot)
	all = append(all, Idioms...)
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// Names lists every registered profile name in sorted order.
func Names() []string {
	names := make([]string, len(registry))
	for i, p := range registry {
		names[i] = p.Name
	}
	return names
}

// ByName returns the named profile: the suite, the calibration ones,
// the sharing idioms, and the "trace:<path>" scheme (a recorded trace,
// loaded from path; load failures report not-ok — Resolve keeps the
// error). The registry lookup itself allocates nothing.
func ByName(name string) (Profile, bool) {
	if strings.HasPrefix(name, tracePrefix) {
		p, err := FromTrace(strings.TrimPrefix(name, tracePrefix))
		return p, err == nil
	}
	i := sort.Search(len(registry), func(i int) bool { return registry[i].Name >= name })
	if i < len(registry) && registry[i].Name == name {
		return registry[i], true
	}
	return Profile{}, false
}

// tracePrefix is the ByName/Resolve scheme for recorded traces.
const tracePrefix = "trace:"

// Resolve is ByName with the failure reason: unknown names list the
// registry, and a bad "trace:<path>" reports the decode error.
func Resolve(name string) (Profile, error) {
	if strings.HasPrefix(name, tracePrefix) {
		return FromTrace(strings.TrimPrefix(name, tracePrefix))
	}
	if p, ok := ByName(name); ok {
		return p, nil
	}
	return Profile{}, fmt.Errorf("unknown workload %q (known: %s, or trace:<path>)",
		name, strings.Join(Names(), ", "))
}

// gen implements Generator for a Profile.
type gen struct {
	p     Profile
	node  int
	nodes int
	rng   *sim.RNG

	zipf    zipf      // shared-rank sampler when p.ZipfSkew > 0
	perm    blockPerm // per-seed rank → block permutation (seed-keyed, node-independent)
	permKey uint64    // phase-offset derivation key (shared by all nodes)

	cur      Op
	burst    int // references left in the current burst
	migrAddr coherence.Addr
	migrLeft int // 1 = the store half of a migratory pair is pending
	pos      uint64
}

// mixSeed derives one node's RNG seed from the run seed with a
// SplitMix64-style finalizer. The previous derivation,
// seed ^ (node+1)*0x9e37, was linear and low-entropy: two (seed, node)
// pairs whose products differ by the seeds' XOR — e.g. any two seeds a
// small multiple of 0x9e37 apart — produced identical streams. The
// finalizer's avalanche makes every (seed, node) pair an independent
// stream.
func mixSeed(seed uint64, node int) uint64 {
	z := seed + (uint64(node)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix64 is the same finalizer over a single word (phase keys,
// permutation keys).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New builds the generator for one node: the profile stream, a
// sharing-idiom stream (Profile.Idiom), or a trace replay
// (Profile.trace). Streams for different nodes and seeds are
// independent; the Zipf rank permutation and phase-offset schedule are
// keyed on the run seed alone, so all nodes contend on the same hot
// blocks.
func New(p Profile, node, nodes int, seed uint64) Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.trace != nil {
		return newTraceGen(p, node)
	}
	if p.Idiom != "" {
		return newIdiomGen(p, node, nodes, seed)
	}
	g := &gen{p: p, node: node, nodes: nodes, rng: sim.NewRNG(mixSeed(seed, node))}
	g.permKey = mix64(seed ^ 0x5eedb10c)
	if p.ZipfSkew > 0 {
		g.zipf = newZipf(p.ZipfSkew, p.SharedBlocks)
		g.perm = newBlockPerm(p.SharedBlocks, g.permKey)
	}
	g.generate()
	return g
}

// Name implements Generator.
func (g *gen) Name() string { return g.p.Name }

// Peek implements Generator.
func (g *gen) Peek() Op { return g.cur }

// Advance implements Generator.
func (g *gen) Advance() {
	g.pos++
	g.generate()
}

// Position returns the count of consumed operations (for tests).
func (g *gen) Position() uint64 { return g.pos }

// nextThink draws the think time of the next reference: burst
// bookkeeping plus a geometric draw outside bursts. The reference that
// starts a burst is itself part of the burst — it already gets the
// near-zero think and consumes one of the BurstLen slots (previously
// the starting reference kept its full geometric think, so every burst
// was one slow reference followed by BurstLen fast ones). Shared by
// the profile and idiom generators.
func nextThink(rng *sim.RNG, p Profile, burst *int) sim.Time {
	if *burst == 0 && rng.Bool(p.Burstiness) {
		*burst = p.BurstLen
	}
	if *burst > 0 {
		*burst--
		return sim.Time(rng.Intn(2))
	}
	return sim.Time(rng.Geometric(p.MeanThink))
}

// phaseOffset is the hot-set displacement of the current phase: a
// deterministic function of the run seed (permKey) and pos/PhaseLen,
// identical across nodes so the whole machine's hot set migrates
// together. 0 while phases are disabled.
func phaseOffset(permKey uint64, phaseLen, pos uint64, sharedBlocks int) int {
	if phaseLen == 0 {
		return 0
	}
	return int(mix64(permKey^(pos/phaseLen+1)) % uint64(sharedBlocks))
}

// sharedBlock draws one shared-region block index: a Zipf rank pushed
// through the seed-keyed permutation when ZipfSkew is set (with the hot
// ranks re-aimed each phase), or the legacy hot-set/uniform split (with
// the hot window migrating each phase).
func (g *gen) sharedBlock() int {
	p := g.p
	if p.ZipfSkew > 0 {
		rank := g.zipf.sample(g.rng)
		hot := p.HotBlocks
		if hot < 1 {
			hot = 1
		}
		if rank < hot {
			rank = (rank + phaseOffset(g.permKey, p.PhaseLen, g.pos, p.SharedBlocks)) % p.SharedBlocks
		}
		return g.perm.apply(rank)
	}
	if g.rng.Bool(p.HotFrac) {
		off := phaseOffset(g.permKey, p.PhaseLen, g.pos, p.SharedBlocks)
		return (off + g.rng.Intn(p.HotBlocks)) % p.SharedBlocks
	}
	return g.rng.Intn(p.SharedBlocks)
}

func (g *gen) generate() {
	p := g.p
	// Pending migratory store half: same block, store, tiny think. The
	// store is a reference like any other, so it consumes a burst slot
	// (previously it returned before the burst bookkeeping, silently
	// stretching every burst that overlapped a migratory pair).
	if g.migrLeft > 0 {
		g.migrLeft = 0
		if g.burst > 0 {
			g.burst--
		}
		g.cur = Op{Addr: g.migrAddr, Kind: coherence.Store, Think: 1 + sim.Time(g.rng.Intn(3))}
		return
	}
	think := nextThink(g.rng, p, &g.burst)

	var addr coherence.Addr
	var kind coherence.AccessType
	if g.rng.Bool(p.SharedFrac) {
		// Shared region at the bottom of the address space.
		addr = coherence.Addr(g.sharedBlock()) * coherence.BlockBytes
		if g.rng.Bool(p.MigratoryFrac) {
			// Read-modify-write: emit the load now, the store next.
			g.migrAddr = addr
			g.migrLeft = 1
			g.cur = Op{Addr: addr, Kind: coherence.Load, Think: think}
			return
		}
		kind = coherence.Load
		if g.rng.Bool(p.StoreFrac) {
			kind = coherence.Store
		}
	} else {
		base := p.SharedBlocks + g.node*p.PrivateBlocks
		addr = coherence.Addr(base+g.rng.Intn(p.PrivateBlocks)) * coherence.BlockBytes
		kind = coherence.Load
		if g.rng.Bool(p.PrivateStoreFrac) {
			kind = coherence.Store
		}
	}
	g.cur = Op{Addr: addr, Kind: kind, Think: think}
}

// Snapshot implements Generator.
func (g *gen) Snapshot() Snapshot {
	return Snapshot{
		rng: g.rng.Snapshot(), cur: g.cur,
		burst: g.burst, migrAddr: g.migrAddr, migrLeft: g.migrLeft, pos: g.pos,
	}
}

// Restore implements Generator.
func (g *gen) Restore(s Snapshot) {
	g.rng.Restore(s.rng)
	g.cur = s.cur
	g.burst = s.burst
	g.migrAddr = s.migrAddr
	g.migrLeft = s.migrLeft
	g.pos = s.pos
}
