// Compact binary trace format: record a live run's per-node reference
// streams once, replay them bit-identically forever. A trace freezes
// the workload side of an experiment — replays produce byte-identical
// sweep artifacts at every -shards setting because the replay generator
// is just another Generator (deterministic, snapshot/restorable), so
// the conservative-window shard schedule sees exactly the stream the
// classic build does.
//
// Wire format (all integers are encoding/binary varints):
//
//	magic   "SPWT1"                      versioned: bump the digit
//	name    uvarint length + bytes       recorded workload's name
//	nodes   uvarint
//	per node:
//	  ops     uvarint                    record count (>= 1)
//	  bytes   uvarint                    encoded stream length
//	  stream  bytes
//
// Each record is uvarint(think<<1 | storeBit) followed by the
// zigzag-varint delta of the referenced *block* from the previous
// record's block (first record deltas from block 0). Block deltas
// rather than raw addresses keep sequential and hot streams to 2-3
// bytes per reference.
package workload

import (
	"encoding/binary"
	"fmt"
	"os"

	"specsimp/internal/coherence"
	"specsimp/internal/sim"
)

// traceMagic versions the wire format.
const traceMagic = "SPWT1"

// Trace is a decoded trace file: the recorded workload's name and one
// encoded reference stream per node. Streams stay varint-encoded in
// memory — the replay generator decodes on the fly, so a Trace costs
// its file size and replay snapshots are a byte offset.
type Trace struct {
	Name    string
	Nodes   int
	counts  []uint64 // records per node
	streams [][]byte
}

// Ops returns the number of recorded references for the given node
// (modulo the trace's node count, matching replay assignment).
func (t *Trace) Ops(node int) uint64 { return t.counts[node%t.Nodes] }

// Encode renders the trace in the wire format.
func (t *Trace) Encode() []byte {
	buf := []byte(traceMagic)
	buf = binary.AppendUvarint(buf, uint64(len(t.Name)))
	buf = append(buf, t.Name...)
	buf = binary.AppendUvarint(buf, uint64(t.Nodes))
	for i := 0; i < t.Nodes; i++ {
		buf = binary.AppendUvarint(buf, t.counts[i])
		buf = binary.AppendUvarint(buf, uint64(len(t.streams[i])))
		buf = append(buf, t.streams[i]...)
	}
	return buf
}

// WriteFile writes the encoded trace to path.
func (t *Trace) WriteFile(path string) error {
	return os.WriteFile(path, t.Encode(), 0o644)
}

// ReadTrace decodes and validates a trace image. Every stream is walked
// once here so replay can decode without error paths.
func ReadTrace(data []byte) (*Trace, error) {
	if len(data) < len(traceMagic) || string(data[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic (want %q)", traceMagic)
	}
	data = data[len(traceMagic):]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("trace: truncated header")
		}
		data = data[n:]
		return v, nil
	}
	nameLen, err := next()
	if err != nil {
		return nil, err
	}
	if nameLen > uint64(len(data)) {
		return nil, fmt.Errorf("trace: truncated name")
	}
	t := &Trace{Name: string(data[:nameLen])}
	data = data[nameLen:]
	nodes, err := next()
	if err != nil {
		return nil, err
	}
	if nodes == 0 || nodes > 1<<20 {
		return nil, fmt.Errorf("trace: implausible node count %d", nodes)
	}
	t.Nodes = int(nodes)
	t.counts = make([]uint64, t.Nodes)
	t.streams = make([][]byte, t.Nodes)
	for i := 0; i < t.Nodes; i++ {
		ops, err := next()
		if err != nil {
			return nil, err
		}
		if ops == 0 {
			return nil, fmt.Errorf("trace: node %d has no records", i)
		}
		size, err := next()
		if err != nil {
			return nil, err
		}
		if size > uint64(len(data)) {
			return nil, fmt.Errorf("trace: node %d stream truncated", i)
		}
		t.counts[i] = ops
		t.streams[i] = data[:size]
		data = data[size:]
		if err := checkStream(t.streams[i], ops); err != nil {
			return nil, fmt.Errorf("trace: node %d: %w", i, err)
		}
	}
	return t, nil
}

// checkStream fully decodes one stream, verifying record count, varint
// framing, and that block numbers never go negative.
func checkStream(data []byte, ops uint64) error {
	var off uint64
	var block int64
	for rec := uint64(0); rec < ops; rec++ {
		_, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return fmt.Errorf("record %d: bad think varint", rec)
		}
		off += uint64(n)
		delta, n := binary.Varint(data[off:])
		if n <= 0 {
			return fmt.Errorf("record %d: bad block varint", rec)
		}
		off += uint64(n)
		block += delta
		if block < 0 {
			return fmt.Errorf("record %d: negative block %d", rec, block)
		}
	}
	if off != uint64(len(data)) {
		return fmt.Errorf("stream has %d trailing bytes", uint64(len(data))-off)
	}
	return nil
}

// FromTrace loads a trace file as a workload Profile. The profile's
// Name is "trace:" plus the *recorded* workload's name — not the path —
// so replay artifacts are byte-identical wherever the file lives.
func FromTrace(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, fmt.Errorf("trace: %w", err)
	}
	t, err := ReadTrace(data)
	if err != nil {
		return Profile{}, fmt.Errorf("%s: %w", path, err)
	}
	return Profile{
		Name:        tracePrefix + t.Name,
		Description: fmt.Sprintf("recorded %s trace (%d nodes)", t.Name, t.Nodes),
		trace:       t,
	}, nil
}

// encodeOp appends one record to a stream, returning the new buffer and
// the op's block (the next record's delta baseline).
func encodeOp(buf []byte, op Op, prevBlock int64) ([]byte, int64) {
	store := uint64(0)
	if op.Kind == coherence.Store {
		store = 1
	}
	buf = binary.AppendUvarint(buf, uint64(op.Think)<<1|store)
	block := int64(op.Addr / coherence.BlockBytes)
	buf = binary.AppendVarint(buf, block-prevBlock)
	return buf, block
}

// TraceRecorder captures the streams a run consumes. Wrap each node's
// generator before handing it to the processor; every Advance into new
// territory logs the op it consumed. The log is the stream's high-water
// mark, not just its committed tail: SafetyNet rollbacks rewind the
// position but keep the records, because a replay of the run retraces
// the lost work too — ops consumed and then rolled back near the end of
// the recording must still be in the trace, or the replay runs off the
// stream mid-rollback and diverges. Re-execution after a rollback is
// deterministic, so the already-logged records match what is re-consumed.
type TraceRecorder struct {
	name  string
	nodes int
	logs  [][]Op
	pos   []uint64 // each node's current position in its log
	gens  []Generator
}

// NewTraceRecorder records a run of the named workload across nodes.
func NewTraceRecorder(name string, nodes int) *TraceRecorder {
	return &TraceRecorder{
		name:  name,
		nodes: nodes,
		logs:  make([][]Op, nodes),
		pos:   make([]uint64, nodes),
		gens:  make([]Generator, nodes),
	}
}

// Wrap returns a recording view of g for the given node.
func (r *TraceRecorder) Wrap(node int, g Generator) Generator {
	r.gens[node] = g
	return &recGen{rec: r, node: node, inner: g}
}

// Trace encodes everything recorded so far, plus each generator's
// still-pending op (peeked, never advanced) where the position sits at
// the high-water mark. Without the pending op a replay over the
// recording's own horizon would run out of records one op early and
// wrap, and the tail of the run would diverge; with it, a replay run
// reproduces the recording run's Results exactly.
func (r *TraceRecorder) Trace() *Trace {
	t := &Trace{Name: r.name, Nodes: r.nodes,
		counts: make([]uint64, r.nodes), streams: make([][]byte, r.nodes)}
	for i := 0; i < r.nodes; i++ {
		var buf []byte
		var prev int64
		n := uint64(0)
		for _, op := range r.logs[i] {
			buf, prev = encodeOp(buf, op, prev)
			n++
		}
		if r.gens[i] != nil && r.pos[i] == uint64(len(r.logs[i])) {
			buf, _ = encodeOp(buf, r.gens[i].Peek(), prev)
			n++
		}
		t.counts[i] = n
		t.streams[i] = buf
	}
	return t
}

// recGen interposes on a generator to log consumed ops. pos mirrors the
// inner generator's position; a Peek at the log's high-water mark
// appends (the op is observable the moment it is peeked — it can be
// issued to the protocol and then rolled back without ever advancing,
// and a faithful replay must retrace that too), while peeks below the
// mark (re-execution after a rollback) re-yield already-logged records.
type recGen struct {
	rec   *TraceRecorder
	node  int
	inner Generator
}

func (g *recGen) Name() string { return g.inner.Name() }

func (g *recGen) Peek() Op {
	op := g.inner.Peek()
	r, n := g.rec, g.node
	if r.pos[n] == uint64(len(r.logs[n])) {
		r.logs[n] = append(r.logs[n], op)
	}
	return op
}

func (g *recGen) Advance() {
	g.Peek() // the current op is logged even if never separately peeked
	g.rec.pos[g.node]++
	g.inner.Advance()
}

func (g *recGen) Snapshot() Snapshot { return g.inner.Snapshot() }

func (g *recGen) Restore(s Snapshot) {
	g.inner.Restore(s)
	g.rec.pos[g.node] = s.pos
}

// traceGen replays one node's recorded stream, decoding varints on the
// fly. Snapshot state is the byte offset (aux0) and previous block
// (aux1) — flat, like every other generator. A replay that outlives the
// recording wraps to the stream's start.
type traceGen struct {
	p    Profile
	data []byte
	cur  Op
	pos  uint64
	off  uint64 // byte offset of the next record
	prev int64  // previous record's block (delta baseline)
}

func newTraceGen(p Profile, node int) *traceGen {
	t := p.trace
	g := &traceGen{p: p, data: t.streams[node%t.Nodes]}
	g.generate()
	return g
}

// Name implements Generator.
func (g *traceGen) Name() string { return g.p.Name }

// Peek implements Generator.
func (g *traceGen) Peek() Op { return g.cur }

// Advance implements Generator.
func (g *traceGen) Advance() {
	g.pos++
	g.generate()
}

func (g *traceGen) generate() {
	if g.off >= uint64(len(g.data)) { // wrap: replay outlived the recording
		g.off, g.prev = 0, 0
	}
	tw, n := binary.Uvarint(g.data[g.off:])
	g.off += uint64(n)
	delta, n := binary.Varint(g.data[g.off:])
	g.off += uint64(n)
	g.prev += delta
	kind := coherence.Load
	if tw&1 == 1 {
		kind = coherence.Store
	}
	g.cur = Op{
		Addr:  coherence.Addr(g.prev) * coherence.BlockBytes,
		Kind:  kind,
		Think: sim.Time(tw >> 1),
	}
}

// Snapshot implements Generator.
func (g *traceGen) Snapshot() Snapshot {
	return Snapshot{cur: g.cur, pos: g.pos, aux0: g.off, aux1: uint64(g.prev)}
}

// Restore implements Generator.
func (g *traceGen) Restore(s Snapshot) {
	g.cur = s.cur
	g.pos = s.pos
	g.off = s.aux0
	g.prev = int64(s.aux1)
}
