package sweepcli_test

import (
	"bytes"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"specsimp/internal/runner"
	"specsimp/internal/sweepcli"
)

// TestRunIDArtifactsByteIdentical is the reproducibility pin for the
// -run-id contract: two complete scale64 sweeps with the same run id
// must produce byte-identical artifact trees — CSVs, JSON summaries,
// AND the manifest (which swaps its wall-clock start time for the run
// id). Each invocation runs from its own working directory with a
// relative -out, so the recorded command and every artifact path are
// position-independent.
func TestRunIDArtifactsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick scale64 sweeps; skipped in -short")
	}
	args := []string{"-exp", "scale64", "-quick", "-parallel", "4", "-run-id", "regress", "-out", "auto"}
	trees := make([]map[string][]byte, 2)
	for i := range trees {
		dir := t.TempDir()
		t.Chdir(dir)
		if err := sweepcli.Run(args, io.Discard); err != nil {
			t.Fatalf("sweep run %d: %v", i, err)
		}
		trees[i] = readTree(t, filepath.Join(dir, "sweep-runs", "run-regress"))
	}

	names := sortedNames(trees[0])
	if want := []string{"manifest.json", "scale64.csv", "scale64.json"}; !equalStrings(names, want) {
		t.Fatalf("artifact tree = %v, want %v", names, want)
	}
	if other := sortedNames(trees[1]); !equalStrings(names, other) {
		t.Fatalf("artifact trees differ in shape: %v vs %v", names, other)
	}
	for _, name := range names {
		if !bytes.Equal(trees[0][name], trees[1][name]) {
			t.Errorf("%s differs between identical -run-id runs:\n--- run 0 ---\n%s\n--- run 1 ---\n%s",
				name, trees[0][name], trees[1][name])
		}
	}
}

// TestRunDirNaming pins the deterministic directory scheme -run-id
// selects (and that the wall-clock fallback stays out of it).
func TestRunDirNaming(t *testing.T) {
	if got, want := runner.RunDir("sweep-runs", "x"), filepath.Join("sweep-runs", "run-x"); got != want {
		t.Fatalf("RunDir = %q, want %q", got, want)
	}
}

// readTree loads every file under root keyed by slash-relative path.
func readTree(t *testing.T, root string) map[string][]byte {
	t.Helper()
	tree := map[string][]byte{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		tree[filepath.ToSlash(rel)] = data
		return nil
	})
	if err != nil {
		t.Fatalf("read artifact tree %s: %v", root, err)
	}
	return tree
}

func sortedNames(tree map[string][]byte) []string {
	names := make([]string, 0, len(tree))
	for name := range tree {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
