package sweepcli_test

import (
	"bytes"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"specsimp/internal/experiments"
	"specsimp/internal/runner"
	"specsimp/internal/sweepcli"
)

// TestRunIDArtifactsByteIdentical is the reproducibility pin for the
// -run-id contract: two complete scale64 sweeps with the same run id
// must produce byte-identical artifact trees — CSVs, JSON summaries,
// AND the manifest (which swaps its wall-clock start time for the run
// id). Each invocation runs from its own working directory with a
// relative -out, so the recorded command and every artifact path are
// position-independent.
func TestRunIDArtifactsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick scale64 sweeps; skipped in -short")
	}
	args := []string{"-exp", "scale64", "-quick", "-parallel", "4", "-run-id", "regress", "-out", "auto"}
	trees := make([]map[string][]byte, 2)
	for i := range trees {
		dir := t.TempDir()
		t.Chdir(dir)
		if err := sweepcli.Run(args, io.Discard); err != nil {
			t.Fatalf("sweep run %d: %v", i, err)
		}
		trees[i] = readTree(t, filepath.Join(dir, "sweep-runs", "run-regress"))
	}

	names := sortedNames(trees[0])
	if want := []string{"manifest.json", "scale64.csv", "scale64.json"}; !equalStrings(names, want) {
		t.Fatalf("artifact tree = %v, want %v", names, want)
	}
	if other := sortedNames(trees[1]); !equalStrings(names, other) {
		t.Fatalf("artifact trees differ in shape: %v vs %v", names, other)
	}
	for _, name := range names {
		if !bytes.Equal(trees[0][name], trees[1][name]) {
			t.Errorf("%s differs between identical -run-id runs:\n--- run 0 ---\n%s\n--- run 1 ---\n%s",
				name, trees[0][name], trees[1][name])
		}
	}
}

// TestRunDirNaming pins the deterministic directory scheme -run-id
// selects (and that the wall-clock fallback stays out of it).
func TestRunDirNaming(t *testing.T) {
	if got, want := runner.RunDir("sweep-runs", "x"), filepath.Join("sweep-runs", "run-x"); got != want {
		t.Fatalf("RunDir = %q, want %q", got, want)
	}
}

// readTree loads every file under root keyed by slash-relative path.
func readTree(t *testing.T, root string) map[string][]byte {
	t.Helper()
	tree := map[string][]byte{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		tree[filepath.ToSlash(rel)] = data
		return nil
	})
	if err != nil {
		t.Fatalf("read artifact tree %s: %v", root, err)
	}
	return tree
}

func sortedNames(tree map[string][]byte) []string {
	names := make([]string, 0, len(tree))
	for name := range tree {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExpUsageListsEveryExperiment is the usage-drift guard: the -exp
// help text is generated from the registry, so every registered
// experiment (and "all") must appear in it.
func TestExpUsageListsEveryExperiment(t *testing.T) {
	usage := sweepcli.ExpUsage()
	for _, name := range append(experiments.Names(), "all") {
		if !strings.Contains(usage, name) {
			t.Errorf("-exp usage %q is missing registered experiment %q", usage, name)
		}
	}
}

// TestUnknownExperimentError pins the -exp error path: the message
// names the bad value and lists the registered set.
func TestUnknownExperimentError(t *testing.T) {
	err := sweepcli.Run([]string{"-exp", "fig9"}, io.Discard)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, want := range append([]string{"fig9"}, experiments.Names()...) {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestCampaignCLIResume drives the CLI surface of the campaign engine:
// -campaign with the abort hook exits with a resumable error, a second
// invocation converges, and -analyze runs over the finished tree.
func TestCampaignCLIResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small campaign twice; skipped in -short")
	}
	dir := t.TempDir()
	t.Chdir(dir)
	spec := []byte(`{
  "run_id": "cli1",
  "quick": true,
  "repeats": 1,
  "parallel": 1,
  "experiments": [{ "name": "slowstart", "axes": { "limit": [1, 2] } }]
}`)
	if err := os.WriteFile("spec.json", spec, 0o644); err != nil {
		t.Fatal(err)
	}
	err := sweepcli.Run([]string{"-campaign", "spec.json", "-campaign-abort-after", "1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("aborted campaign did not report interruption: %v", err)
	}
	var out bytes.Buffer
	if err := sweepcli.Run([]string{"-campaign", "spec.json"}, &out); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !strings.Contains(out.String(), "1 reused") {
		t.Fatalf("resume did not reuse the pre-kill point:\n%s", out.String())
	}
	if err := sweepcli.Run([]string{"-analyze", filepath.Join("sweep-runs", "run-cli1")}, io.Discard); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if _, err := os.Stat(filepath.Join("sweep-runs", "run-cli1", "analysis", "slowstart-table.tex")); err != nil {
		t.Fatalf("analysis artifact missing: %v", err)
	}
}
