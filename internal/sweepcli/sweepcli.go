// Package sweepcli is the body of the sweep command, factored out of
// package main so tests can drive full artifact-producing invocations
// in-process (the -run-id byte-reproducibility regression test runs
// the CLI twice and diffs the trees, and the campaign resume test
// kills and resumes a campaign the same way).
//
// The package deliberately sits outside the walltime contract scope
// (internal/lint): wall-clock use here is confined to progress timing
// on stdout and the manifest's StartedAt for unnamed runs — never to
// simulation or artifact content.
package sweepcli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"specsimp"
	"specsimp/internal/campaign"
	"specsimp/internal/experiments"
	"specsimp/internal/runner"
)

// ParseShards parses the -shards flag's two forms: "N" requests N
// tiles with the grid shape auto-factored per design point, "RxC"
// (e.g. "4x2") pins the tile grid to R rows by C columns and requests
// R*C tiles. Shared by cmd/sweep, cmd/specsim, and campaign specs
// (the parser itself lives in internal/campaign).
func ParseShards(s string) (shards, rows, cols int, err error) {
	return campaign.ParseShards(s)
}

// ExpUsage is the -exp flag's help text, generated from the experiment
// registry so the usage string can never drift from the registered set.
func ExpUsage() string {
	return "experiment: " + strings.Join(append(experiments.Names(), "all"), ", ")
}

// Run executes one sweep invocation with the given command-line
// arguments (without the program name), writing tables or JSON
// summaries to w. It is cmd/sweep's entire body; see that command's
// doc comment for the flag reference.
func Run(args []string, w io.Writer) error {
	startedAt := time.Now().UTC()
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", ExpUsage())
		quick    = fs.Bool("quick", false, "bench-sized parameters (faster, noisier)")
		wlName   = fs.String("workload", "oltp", "workload override for experiments with a workload axis — any registered name or trace:<path>; when unset each experiment keeps its registry-declared default")
		parallel = fs.Int("parallel", 0, "ACROSS-run parallelism: the worker-pool bound for grid execution — up to N design points simulate concurrently, one kernel each (0 = GOMAXPROCS). Orthogonal to -shards.")
		shards   = fs.String("shards", "1", "INTRA-run parallelism for shard-capable design points (the scale64/scale1024 directory machines): each single run partitions its torus into tiles advancing in conservative lockstep windows. 'N' requests N tiles (auto-factored into a near-square RxC grid per point); 'RxC' pins the tile-grid shape, e.g. 4x2 = 4 rows of 2 columns. Results and artifacts are byte-identical for every count and shape; per point an unfit request is clamped to the largest legal tiling, and snooping points always simulate serially (ordered bus).")
		out      = fs.String("out", "", "artifact directory for CSV+JSON results ('auto' = run dir under sweep-runs/, empty = none)")
		runID    = fs.String("run-id", "", "name for this run: with -out auto the artifacts land in sweep-runs/run-<id>, and the manifest records the id instead of a wall-clock start time, making the whole artifact tree byte-reproducible (empty = timestamped dir and started_at in the manifest). With -campaign it overrides the spec's run_id.")
		asJSON   = fs.Bool("json", false, "print JSON summaries to stdout instead of tables")

		campaignPath = fs.String("campaign", "", "run a declarative campaign from this JSON spec (see EXPERIMENTS.md \"Campaigns\"); resumable — re-invoking with the same spec and run id skips completed points")
		analyzeDir   = fs.String("analyze", "", "regenerate summaries, paper tables, and LaTeX tables from a completed run directory without re-simulating")
		abortAfter   = fs.Int("campaign-abort-after", 0, "interrupt the campaign after N freshly executed points (the simulated-kill hook resume tests and CI use; 0 = run to completion)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *analyzeDir != "" {
		rep, err := campaign.Analyze(*analyzeDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "analyzed %d experiments (%d result rows): %s\n",
			len(rep.Experiments), rep.Rows, strings.Join(rep.Experiments, ", "))
		fmt.Fprintf(os.Stderr, "sweep: analysis written to %s\n", rep.Dir+"/analysis")
		return nil
	}
	if *campaignPath != "" {
		return runCampaign(*campaignPath, *runID, *parallel, *abortAfter, explicit, w)
	}

	p := specsimp.StandardParams()
	if *quick {
		p = specsimp.QuickParams()
	}
	n, rows, cols, err := ParseShards(*shards)
	if err != nil {
		return err
	}
	p.Shards, p.ShardRows, p.ShardCols = n, rows, cols
	if explicit["workload"] {
		// An explicit -workload overrides every selected experiment's
		// workload axis; left unset, each experiment keeps its declared
		// default (checkpoint runs uniform, the rest oltp).
		wl, err := specsimp.ResolveWorkload(*wlName)
		if err != nil {
			return err
		}
		p.Workload = wl
	}

	ex := &runner.Runner{Workers: *parallel}
	if *out != "" {
		dir := *out
		if dir == "auto" {
			if *runID != "" {
				dir = runner.RunDir("sweep-runs", *runID)
			} else {
				dir = runner.TimestampedDir("sweep-runs")
			}
		}
		sink, err := runner.NewSink(dir)
		if err != nil {
			return err
		}
		ex.Sink = sink
	}
	p.Exec = ex

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		e, ok := experiments.ByName(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (registered: %s, or all)",
				*exp, strings.Join(experiments.Names(), ", "))
		}
		selected = []experiments.Experiment{e}
	}

	var ran []string
	for _, e := range selected {
		np, err := experiments.Normalize(e, p)
		if err != nil {
			return err
		}
		ran = append(ran, e.Name())
		start := time.Now()
		if *asJSON {
			res, err := experiments.RunExperiment(e, np)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]interface{}{"experiment": e.Name(), "results": res}); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintf(w, "==== %s ====\n", e.Title(np))
		if pre, ok := e.(experiments.Preambler); ok {
			fmt.Fprintln(w, pre.Preamble(np))
		}
		res, err := experiments.RunExperiment(e, np)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, e.Table(res))
		fmt.Fprintf(w, "(%.1fs)\n\n", time.Since(start).Seconds())
	}

	if s := ex.Sink; s != nil {
		m := runner.Manifest{
			// The recorded command uses the canonical program name and
			// the caller's argument list, not os.Args: invoking the
			// binary through different paths must not change manifest
			// bytes.
			Command:     strings.TrimSpace("sweep " + strings.Join(args, " ")),
			Experiments: ran,
			Workers:     ex.WorkerBound(),
			Quick:       *quick,
		}
		if *runID != "" {
			m.RunID = *runID
		} else {
			m.StartedAt = startedAt
		}
		s.WriteJSON("manifest", m)
		if err := s.Err(); err != nil {
			return fmt.Errorf("artifact write failed: %v", err)
		}
		fmt.Fprintf(os.Stderr, "sweep: artifacts written to %s\n", s.Dir())
	}
	return nil
}

// runCampaign executes -campaign: load and validate the spec, apply the
// CLI's overrides, run the plan with per-point resume, and print each
// completed experiment's table as it lands.
func runCampaign(path, runID string, parallel, abortAfter int, explicit map[string]bool, w io.Writer) error {
	spec, err := campaign.LoadSpec(path)
	if err != nil {
		return err
	}
	if runID != "" {
		spec.RunID = runID
	}
	if explicit["parallel"] {
		spec.Parallel = parallel
	}
	plan, err := campaign.BuildPlan(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "campaign %s: %d experiments, %d design points\n",
		plan.RunID, len(plan.Experiments), plan.Points())

	last := time.Now()
	rep, err := campaign.Execute(plan, campaign.Options{
		AbortAfter: abortAfter,
		OnResult: func(pe campaign.PlanExperiment, res any) {
			fmt.Fprintf(w, "==== %s ====\n", pe.Exp.Title(pe.Params))
			if pre, ok := pe.Exp.(experiments.Preambler); ok {
				fmt.Fprintln(w, pre.Preamble(pe.Params))
			}
			fmt.Fprintln(w, pe.Exp.Table(res))
			fmt.Fprintf(w, "(%.1fs)\n\n", time.Since(last).Seconds())
			last = time.Now()
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "campaign %s: %d points executed, %d reused\n", plan.RunID, rep.Executed, rep.Reused)
	if rep.Interrupted {
		return fmt.Errorf("campaign %s interrupted after %d freshly executed points; re-run with the same spec and run id to resume", plan.RunID, rep.Executed)
	}
	fmt.Fprintf(os.Stderr, "sweep: artifacts written to %s\n", rep.Dir)
	return nil
}
