// Package sweepcli is the body of the sweep command, factored out of
// package main so tests can drive full artifact-producing invocations
// in-process (the -run-id byte-reproducibility regression test runs
// the CLI twice and diffs the trees).
//
// The package deliberately sits outside the walltime contract scope
// (internal/lint): wall-clock use here is confined to progress timing
// on stdout and the manifest's StartedAt for unnamed runs — never to
// simulation or artifact content.
package sweepcli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"specsimp"
	"specsimp/internal/experiments"
	"specsimp/internal/runner"
	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

// ParseShards parses the -shards flag's two forms: "N" requests N
// tiles with the grid shape auto-factored per design point, "RxC"
// (e.g. "4x2") pins the tile grid to R rows by C columns and requests
// R*C tiles. Shared by cmd/sweep and cmd/specsim so the two CLIs stay
// in sync.
func ParseShards(s string) (shards, rows, cols int, err error) {
	if r, c, ok := strings.Cut(strings.ToLower(s), "x"); ok {
		rows, rerr := strconv.Atoi(r)
		cols, cerr := strconv.Atoi(c)
		if rerr != nil || cerr != nil || rows < 1 || cols < 1 {
			return 0, 0, 0, fmt.Errorf("-shards %q: a tile-grid shape is RxC with positive rows and columns, e.g. 4x2", s)
		}
		return rows * cols, rows, cols, nil
	}
	n, nerr := strconv.Atoi(s)
	if nerr != nil || n < 1 {
		return 0, 0, 0, fmt.Errorf("-shards %q: want a tile count >= 1 or a tile-grid shape RxC (1 means serial)", s)
	}
	return n, 0, 0, nil
}

// Run executes one sweep invocation with the given command-line
// arguments (without the program name), writing tables or JSON
// summaries to w. It is cmd/sweep's entire body; see that command's
// doc comment for the flag reference.
func Run(args []string, w io.Writer) error {
	startedAt := time.Now().UTC()
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: fig4, fig5, reorder, snoop, buffers, scale64, scale1024, slowstart, deflection, reenable, checkpoint, availability, workloads, all")
		quick    = fs.Bool("quick", false, "bench-sized parameters (faster, noisier)")
		wlName   = fs.String("workload", "oltp", "workload for reorder/buffers/ablations/workloads — any registered name or trace:<path>")
		parallel = fs.Int("parallel", 0, "ACROSS-run parallelism: the worker-pool bound for grid execution — up to N design points simulate concurrently, one kernel each (0 = GOMAXPROCS). Orthogonal to -shards.")
		shards   = fs.String("shards", "1", "INTRA-run parallelism for shard-capable design points (the scale64/scale1024 directory machines): each single run partitions its torus into tiles advancing in conservative lockstep windows. 'N' requests N tiles (auto-factored into a near-square RxC grid per point); 'RxC' pins the tile-grid shape, e.g. 4x2 = 4 rows of 2 columns. Results and artifacts are byte-identical for every count and shape; per point an unfit request is clamped to the largest legal tiling, and snooping points always simulate serially (ordered bus).")
		out      = fs.String("out", "", "artifact directory for CSV+JSON results ('auto' = run dir under sweep-runs/, empty = none)")
		runID    = fs.String("run-id", "", "name for this run: with -out auto the artifacts land in sweep-runs/run-<id>, and the manifest records the id instead of a wall-clock start time, making the whole artifact tree byte-reproducible (empty = timestamped dir and started_at in the manifest)")
		asJSON   = fs.Bool("json", false, "print JSON summaries to stdout instead of tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := specsimp.StandardParams()
	if *quick {
		p = specsimp.QuickParams()
	}
	n, rows, cols, err := ParseShards(*shards)
	if err != nil {
		return err
	}
	p.Shards, p.ShardRows, p.ShardCols = n, rows, cols
	wl, err := specsimp.ResolveWorkload(*wlName)
	if err != nil {
		return err
	}

	ex := &runner.Runner{Workers: *parallel}
	if *out != "" {
		dir := *out
		if dir == "auto" {
			if *runID != "" {
				dir = runner.RunDir("sweep-runs", *runID)
			} else {
				dir = runner.TimestampedDir("sweep-runs")
			}
		}
		sink, err := runner.NewSink(dir)
		if err != nil {
			return err
		}
		ex.Sink = sink
	}
	p.Exec = ex

	var ran []string
	var runErr error
	run := func(name, title string, fn func() interface{}) {
		if runErr != nil {
			return
		}
		ran = append(ran, name)
		start := time.Now()
		if *asJSON {
			res := fn()
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]interface{}{"experiment": name, "results": res}); err != nil {
				runErr = err
			}
			return
		}
		fmt.Fprintf(w, "==== %s ====\n", title)
		fn()
		fmt.Fprintf(w, "(%.1fs)\n\n", time.Since(start).Seconds())
	}

	all := *exp == "all"
	if all || *exp == "fig4" {
		run("fig4", "Figure 4: normalized performance vs mis-speculation rate", func() interface{} {
			if !*asJSON {
				fmt.Fprintf(w, "compressed clock: 1 second = %.0f cycles; projections at true 4 GHz\n\n", p.CyclesPerSecond)
			}
			res := specsimp.Fig4(p)
			if !*asJSON {
				fmt.Fprintln(w, specsimp.Fig4Table(res))
			}
			return res
		})
	}
	if all || *exp == "fig5" {
		run("fig5", "Figure 5: static vs adaptive routing (400 MB/s links)", func() interface{} {
			res := specsimp.Fig5(p)
			if !*asJSON {
				fmt.Fprintln(w, specsimp.Fig5Table(res))
			}
			return res
		})
	}
	if all || *exp == "reorder" {
		run("reorder", "§5.3: message reorder rates vs link bandwidth ("+wl.Name+")", func() interface{} {
			res := specsimp.ReorderRates(p, wl)
			if !*asJSON {
				fmt.Fprintln(w, specsimp.ReorderTable(res))
			}
			return res
		})
	}
	if all || *exp == "snoop" {
		run("snoop", "§5.3: speculatively simplified snooping protocol", func() interface{} {
			res := specsimp.SnoopRecoveries(p)
			if !*asJSON {
				fmt.Fprintln(w, specsimp.SnoopTable(res))
			}
			return res
		})
	}
	if all || *exp == "buffers" {
		run("buffers", "§5.3: simplified interconnect buffer sweep ("+wl.Name+")", func() interface{} {
			res := specsimp.BufferSweep(p, wl)
			if !*asJSON {
				fmt.Fprintln(w, specsimp.BufferTable(res))
			}
			return res
		})
	}
	if all || *exp == "scale64" {
		run("scale64", "Scaling study: 4x4 -> 8x8 -> 16x16, both Spec protocols (directory-only at 256 nodes)", func() interface{} {
			res := specsimp.ScaleSweep(p)
			if !*asJSON {
				fmt.Fprintln(w, specsimp.ScaleTable(res))
			}
			return res
		})
	}
	if all || *exp == "scale1024" {
		run("scale1024", "Scaling study: 4x4 -> 32x32 (1024 nodes) on 2D torus tiles (oltp)", func() interface{} {
			res := specsimp.Scale1024Sweep(p)
			if !*asJSON {
				fmt.Fprintln(w, specsimp.Scale1024Table(res))
			}
			return res
		})
	}
	if all || *exp == "slowstart" {
		run("slowstart", "Ablation A2: slow-start outstanding limit ("+wl.Name+", 2-entry buffers)", func() interface{} {
			res := experiments.SlowStartAblation(p, wl, []int{1, 2, 4, 8})
			if !*asJSON {
				for _, r := range res {
					fmt.Fprintf(w, "  limit %d: perf %s, recoveries %.2f\n", r.Limit, r.Perf, r.Recoveries)
				}
			}
			return res
		})
	}
	if all || *exp == "deflection" {
		run("deflection", "Ablation A4: deadlock-recovery vs deflection routing ("+wl.Name+")", func() interface{} {
			res := experiments.DeflectionAblation(p, wl)
			if !*asJSON {
				for _, r := range res {
					fmt.Fprintf(w, "  %-16s perf %s, recoveries %.2f, deflections %.0f\n",
						r.Name, r.Perf, r.Recoveries, r.Deflections)
				}
			}
			return res
		})
	}
	if all || *exp == "reenable" {
		run("reenable", "Ablation A5: adaptive-routing re-enable window ("+wl.Name+", amplified reordering)", func() interface{} {
			res := experiments.ReenableAblation(p, wl,
				[]sim.Time{0, 2 * p.CheckpointInterval, 10 * p.CheckpointInterval, 50 * p.CheckpointInterval})
			if !*asJSON {
				for _, r := range res {
					name := fmt.Sprintf("%d cycles", r.Window)
					if r.Window == 0 {
						name = "never (conservative)"
					}
					fmt.Fprintf(w, "  re-enable after %-22s perf %s, recoveries %.2f\n", name+":", r.Perf, r.Recoveries)
				}
			}
			return res
		})
	}
	if all || *exp == "checkpoint" {
		run("checkpoint", "Ablation A3: checkpoint interval vs log occupancy", func() interface{} {
			res := experiments.CheckpointAblation(p, workload.Uniform,
				[]sim.Time{2_000, 5_000, 20_000, 50_000})
			if !*asJSON {
				for _, r := range res {
					fmt.Fprintf(w, "  interval %6d: perf %s, log high water %.0f B, ckpt stall %.0f cyc\n",
						r.Interval, r.Perf, r.LogHighWater, r.CheckpointStall)
				}
			}
			return res
		})
	}
	if all || *exp == "workloads" {
		run("workloads", "Workload realism: Zipf skew × phase length × sharing idiom, both Spec protocols ("+wl.Name+" base)", func() interface{} {
			res := specsimp.Workloads(p, wl)
			if !*asJSON {
				fmt.Fprintln(w, specsimp.WorkloadsTable(res))
			}
			return res
		})
	}
	if all || *exp == "availability" {
		run("availability", "Availability: sustained fault regimes × checkpoint cadence (oltp)", func() interface{} {
			res := experiments.Availability(p)
			if !*asJSON {
				fmt.Fprintln(w, experiments.AvailabilityTable(res))
			}
			return res
		})
	}
	if runErr != nil {
		return runErr
	}
	if len(ran) == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	if s := ex.Sink; s != nil {
		m := runner.Manifest{
			// The recorded command uses the canonical program name and
			// the caller's argument list, not os.Args: invoking the
			// binary through different paths must not change manifest
			// bytes.
			Command:     strings.TrimSpace("sweep " + strings.Join(args, " ")),
			Experiments: ran,
			Workers:     ex.WorkerBound(),
			Quick:       *quick,
		}
		if *runID != "" {
			m.RunID = *runID
		} else {
			m.StartedAt = startedAt
		}
		s.WriteJSON("manifest", m)
		if err := s.Err(); err != nil {
			return fmt.Errorf("artifact write failed: %v", err)
		}
		fmt.Fprintf(os.Stderr, "sweep: artifacts written to %s\n", s.Dir())
	}
	return nil
}
