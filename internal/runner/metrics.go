package runner

// Metrics is the fixed measurement schema shared by every design-point
// run. It replaced the original map[string]float64: a typed struct is
// returned by value, so executing a grid point allocates nothing for its
// results, and the CSV column set is identical for every experiment by
// construction.
type Metrics struct {
	Perf              float64
	Cycles            float64
	Instructions      float64
	Recoveries        float64
	Checkpoints       float64
	CheckpointStall   float64
	MeanLostWork      float64
	MeanLinkUtil      float64
	ReorderTotal      float64
	Deflections       float64
	Timeouts          float64
	CornerDetected    float64
	CornerHandled     float64
	LogHighWaterBytes float64
	Writebacks        float64
	WBRaces           float64
	Invalidations     float64
	InvBroadcasts     float64
	SharerOverflows   float64
	Transactions      float64
	MissLatencyMean   float64
	LimitStalls       float64
	OrderViolations   float64
	ReorderVNet       [4]float64
}

// metricKeys lists every metric column in sorted order — the CSV layout
// contract (the artifact format predates the typed schema and is kept
// byte-compatible).
var metricKeys = []string{
	"checkpoint_stall",
	"checkpoints",
	"corner_detected",
	"corner_handled",
	"cycles",
	"deflections",
	"instructions",
	"inv_broadcasts",
	"invalidations",
	"limit_stalls",
	"log_high_water_bytes",
	"mean_link_util",
	"mean_lost_work",
	"miss_latency_mean",
	"order_violations",
	"perf",
	"recoveries",
	"reorder_total",
	"reorder_vnet0",
	"reorder_vnet1",
	"reorder_vnet2",
	"reorder_vnet3",
	"sharer_overflows",
	"timeouts",
	"transactions",
	"wb_races",
	"writebacks",
}

// MetricKeys returns the metric column names in CSV order.
func MetricKeys() []string { return append([]string(nil), metricKeys...) }

// Get returns the metric named by key (the CSV column name). Unknown
// keys are a programming error and panic: experiment aggregation code
// addresses metrics by name and a typo must not read as silent zero.
func (m *Metrics) Get(key string) float64 {
	switch key {
	case "perf":
		return m.Perf
	case "cycles":
		return m.Cycles
	case "instructions":
		return m.Instructions
	case "recoveries":
		return m.Recoveries
	case "checkpoints":
		return m.Checkpoints
	case "checkpoint_stall":
		return m.CheckpointStall
	case "mean_lost_work":
		return m.MeanLostWork
	case "mean_link_util":
		return m.MeanLinkUtil
	case "reorder_total":
		return m.ReorderTotal
	case "deflections":
		return m.Deflections
	case "timeouts":
		return m.Timeouts
	case "corner_detected":
		return m.CornerDetected
	case "corner_handled":
		return m.CornerHandled
	case "log_high_water_bytes":
		return m.LogHighWaterBytes
	case "writebacks":
		return m.Writebacks
	case "wb_races":
		return m.WBRaces
	case "invalidations":
		return m.Invalidations
	case "inv_broadcasts":
		return m.InvBroadcasts
	case "sharer_overflows":
		return m.SharerOverflows
	case "transactions":
		return m.Transactions
	case "miss_latency_mean":
		return m.MissLatencyMean
	case "limit_stalls":
		return m.LimitStalls
	case "order_violations":
		return m.OrderViolations
	case "reorder_vnet0":
		return m.ReorderVNet[0]
	case "reorder_vnet1":
		return m.ReorderVNet[1]
	case "reorder_vnet2":
		return m.ReorderVNet[2]
	case "reorder_vnet3":
		return m.ReorderVNet[3]
	}
	panic("runner: unknown metric key " + key)
}
