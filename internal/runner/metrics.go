package runner

// Metrics is the fixed measurement schema shared by every design-point
// run. It replaced the original map[string]float64: a typed struct is
// returned by value, so executing a grid point allocates nothing for its
// results, and the CSV column set is identical for every experiment by
// construction.
type Metrics struct {
	Perf              float64
	Cycles            float64
	Instructions      float64
	Recoveries        float64
	Checkpoints       float64
	CheckpointStall   float64
	MeanLostWork      float64
	MeanLinkUtil      float64
	ReorderTotal      float64
	Deflections       float64
	Timeouts          float64
	CornerDetected    float64
	CornerHandled     float64
	LogHighWaterBytes float64
	Writebacks        float64
	WBRaces           float64
	Invalidations     float64
	InvBroadcasts     float64
	SharerOverflows   float64
	Transactions      float64
	MissLatencyMean   float64
	LimitStalls       float64
	OrderViolations   float64
	ReorderVNet       [4]float64

	// Availability metrics (see system.Results): degraded-mode
	// throughput, log backpressure, and the exact recovery-latency and
	// rollback-distance distribution moments. All are integers in the
	// source struct; float64 holds them losslessly at experiment scales.
	OutageCycles            float64
	DegradedCycles          float64
	DegradedInstructions    float64
	LogStallCycles          float64
	LogOverflows            float64
	CheckpointIntervalFinal float64
	RecoveryLatN            float64
	RecoveryLatSum          float64
	RecoveryLatMin          float64
	RecoveryLatMax          float64
	RollbackN               float64
	RollbackSum             float64
	RollbackMin             float64
	RollbackMax             float64
}

// metricKeys lists every metric column in sorted order — the CSV layout
// contract (the artifact format predates the typed schema and is kept
// byte-compatible).
var metricKeys = []string{
	"checkpoint_interval_final",
	"checkpoint_stall",
	"checkpoints",
	"corner_detected",
	"corner_handled",
	"cycles",
	"deflections",
	"degraded_cycles",
	"degraded_instructions",
	"instructions",
	"inv_broadcasts",
	"invalidations",
	"limit_stalls",
	"log_high_water_bytes",
	"log_overflows",
	"log_stall_cycles",
	"mean_link_util",
	"mean_lost_work",
	"miss_latency_mean",
	"order_violations",
	"outage_cycles",
	"perf",
	"recoveries",
	"recovery_lat_max",
	"recovery_lat_min",
	"recovery_lat_n",
	"recovery_lat_sum",
	"reorder_total",
	"reorder_vnet0",
	"reorder_vnet1",
	"reorder_vnet2",
	"reorder_vnet3",
	"rollback_max",
	"rollback_min",
	"rollback_n",
	"rollback_sum",
	"sharer_overflows",
	"timeouts",
	"transactions",
	"wb_races",
	"writebacks",
}

// MetricKeys returns the metric column names in CSV order.
func MetricKeys() []string { return append([]string(nil), metricKeys...) }

// Set assigns the metric named by key (the CSV column name) —
// Get's inverse, used by the analysis stage to reconstruct a run's
// Metrics from its CSV row without re-simulating. Unknown keys are a
// programming error and panic, exactly like Get.
func (m *Metrics) Set(key string, v float64) {
	switch key {
	case "perf":
		m.Perf = v
	case "cycles":
		m.Cycles = v
	case "instructions":
		m.Instructions = v
	case "recoveries":
		m.Recoveries = v
	case "checkpoints":
		m.Checkpoints = v
	case "checkpoint_stall":
		m.CheckpointStall = v
	case "mean_lost_work":
		m.MeanLostWork = v
	case "mean_link_util":
		m.MeanLinkUtil = v
	case "reorder_total":
		m.ReorderTotal = v
	case "deflections":
		m.Deflections = v
	case "timeouts":
		m.Timeouts = v
	case "corner_detected":
		m.CornerDetected = v
	case "corner_handled":
		m.CornerHandled = v
	case "log_high_water_bytes":
		m.LogHighWaterBytes = v
	case "writebacks":
		m.Writebacks = v
	case "wb_races":
		m.WBRaces = v
	case "invalidations":
		m.Invalidations = v
	case "inv_broadcasts":
		m.InvBroadcasts = v
	case "sharer_overflows":
		m.SharerOverflows = v
	case "transactions":
		m.Transactions = v
	case "miss_latency_mean":
		m.MissLatencyMean = v
	case "limit_stalls":
		m.LimitStalls = v
	case "order_violations":
		m.OrderViolations = v
	case "reorder_vnet0":
		m.ReorderVNet[0] = v
	case "reorder_vnet1":
		m.ReorderVNet[1] = v
	case "reorder_vnet2":
		m.ReorderVNet[2] = v
	case "reorder_vnet3":
		m.ReorderVNet[3] = v
	case "outage_cycles":
		m.OutageCycles = v
	case "degraded_cycles":
		m.DegradedCycles = v
	case "degraded_instructions":
		m.DegradedInstructions = v
	case "log_stall_cycles":
		m.LogStallCycles = v
	case "log_overflows":
		m.LogOverflows = v
	case "checkpoint_interval_final":
		m.CheckpointIntervalFinal = v
	case "recovery_lat_n":
		m.RecoveryLatN = v
	case "recovery_lat_sum":
		m.RecoveryLatSum = v
	case "recovery_lat_min":
		m.RecoveryLatMin = v
	case "recovery_lat_max":
		m.RecoveryLatMax = v
	case "rollback_n":
		m.RollbackN = v
	case "rollback_sum":
		m.RollbackSum = v
	case "rollback_min":
		m.RollbackMin = v
	case "rollback_max":
		m.RollbackMax = v
	default:
		panic("runner: unknown metric key " + key)
	}
}

// Get returns the metric named by key (the CSV column name). Unknown
// keys are a programming error and panic: experiment aggregation code
// addresses metrics by name and a typo must not read as silent zero.
func (m *Metrics) Get(key string) float64 {
	switch key {
	case "perf":
		return m.Perf
	case "cycles":
		return m.Cycles
	case "instructions":
		return m.Instructions
	case "recoveries":
		return m.Recoveries
	case "checkpoints":
		return m.Checkpoints
	case "checkpoint_stall":
		return m.CheckpointStall
	case "mean_lost_work":
		return m.MeanLostWork
	case "mean_link_util":
		return m.MeanLinkUtil
	case "reorder_total":
		return m.ReorderTotal
	case "deflections":
		return m.Deflections
	case "timeouts":
		return m.Timeouts
	case "corner_detected":
		return m.CornerDetected
	case "corner_handled":
		return m.CornerHandled
	case "log_high_water_bytes":
		return m.LogHighWaterBytes
	case "writebacks":
		return m.Writebacks
	case "wb_races":
		return m.WBRaces
	case "invalidations":
		return m.Invalidations
	case "inv_broadcasts":
		return m.InvBroadcasts
	case "sharer_overflows":
		return m.SharerOverflows
	case "transactions":
		return m.Transactions
	case "miss_latency_mean":
		return m.MissLatencyMean
	case "limit_stalls":
		return m.LimitStalls
	case "order_violations":
		return m.OrderViolations
	case "reorder_vnet0":
		return m.ReorderVNet[0]
	case "reorder_vnet1":
		return m.ReorderVNet[1]
	case "reorder_vnet2":
		return m.ReorderVNet[2]
	case "reorder_vnet3":
		return m.ReorderVNet[3]
	case "outage_cycles":
		return m.OutageCycles
	case "degraded_cycles":
		return m.DegradedCycles
	case "degraded_instructions":
		return m.DegradedInstructions
	case "log_stall_cycles":
		return m.LogStallCycles
	case "log_overflows":
		return m.LogOverflows
	case "checkpoint_interval_final":
		return m.CheckpointIntervalFinal
	case "recovery_lat_n":
		return m.RecoveryLatN
	case "recovery_lat_sum":
		return m.RecoveryLatSum
	case "recovery_lat_min":
		return m.RecoveryLatMin
	case "recovery_lat_max":
		return m.RecoveryLatMax
	case "rollback_n":
		return m.RollbackN
	case "rollback_sum":
		return m.RollbackSum
	case "rollback_min":
		return m.RollbackMin
	case "rollback_max":
		return m.RollbackMax
	}
	panic("runner: unknown metric key " + key)
}
