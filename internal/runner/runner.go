// Package runner is the sweep engine behind the evaluation harness: it
// executes a declarative grid of design points (experiment × workload ×
// params × repeat) on a bounded worker pool with deterministic per-point
// RNG seeds, and optionally persists structured artifacts — one CSV row
// per run plus a JSON summary per experiment — through a Sink.
//
// The experiment drivers in internal/experiments build grids, hand them
// to a Runner, and aggregate the returned per-run metrics into the
// paper's tables; cmd/sweep wires the Runner's worker bound (-parallel)
// and Sink (-out) from the command line. Given identical grids and
// seeds, two runs produce byte-identical CSV artifacts regardless of
// worker count or scheduling order.
package runner

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Point is one design point instance: a single simulated run.
type Point struct {
	// Experiment names the owning experiment (e.g. "fig4"); it selects
	// the CSV file and JSON summary the point's row lands in.
	Experiment string
	// Workload is the workload profile name, or "" for workload-less
	// points.
	Workload string
	// Params are the experiment's axis settings for this point (e.g.
	// rate=100, bw=0.2), recorded as CSV columns in sorted-key order.
	Params map[string]string
	// Repeat is the perturbed-run index within the design point
	// (paper §5.2 methodology).
	Repeat int
	// Seed is the deterministic RNG seed for this run; use PerturbSeed
	// to derive it from a base seed and Repeat.
	Seed uint64
	// Run executes the point and returns its metrics. It must be a pure
	// function of seed so that re-running a grid reproduces artifacts
	// byte for byte. An error marks the design point as failed (e.g. an
	// illegal machine configuration): the grid keeps running and the
	// error is reported per point, in Result.Err and the CSV artifact's
	// error column. Error messages must also be pure functions of the
	// point for artifacts to stay reproducible.
	Run func(seed uint64) (Metrics, error)
}

// Result pairs a point with the metrics its run produced. Err is set
// when the point failed (Metrics is then zero).
type Result struct {
	Point
	Metrics Metrics
	Err     error
}

// PerturbSeed derives the deterministic seed for a repeat from a base
// seed, matching the perturbation scheme of system.RunPerturbed so that
// grid-based drivers reproduce the historical per-run numbers.
func PerturbSeed(base uint64, repeat int) uint64 {
	return base + uint64(repeat)*7919
}

// PointCache is the resume hook consulted around every point
// execution (see internal/campaign). Lookup returning ok short-
// circuits the simulation with the recorded metrics — the point's
// result is indistinguishable from a fresh run because point
// execution is a pure function of the point — and Store records a
// freshly executed point. The error travels as text: reconstructing
// it must reproduce the same CSV error column and JSON summary bytes,
// and experiment errors are plain descriptive strings by contract.
// Implementations must be safe for concurrent use by all workers.
type PointCache interface {
	Lookup(p Point) (m Metrics, errText string, ok bool)
	Store(p Point, m Metrics, errText string)
}

// Runner executes grids on a bounded worker pool.
type Runner struct {
	// Workers bounds concurrent point executions; <= 0 means
	// GOMAXPROCS. Each point runs its own single-threaded simulation
	// kernel, so the bound is the whole concurrency story — grids never
	// oversubscribe the host no matter how many points they contain.
	Workers int
	// Sink, when non-nil, receives one CSV row per executed point.
	Sink *Sink
	// Cache, when non-nil, is consulted before each point runs and
	// notified after: completed points found in the cache skip
	// simulation entirely (campaign resume).
	Cache PointCache
	// Interrupt, when non-nil, is polled as workers claim points; once
	// it returns true the pool stops claiming, Run returns with the
	// grid incomplete, and no artifacts are written for it (nor by any
	// later Run or Summarize on this Runner — the interruption is
	// sticky, modeling a process kill). Cached results recorded before
	// the interruption remain durable in the Cache.
	Interrupt func() bool

	interrupted atomic.Bool
}

// Interrupted reports whether any Run on this Runner was interrupted.
func (r *Runner) Interrupted() bool { return r.interrupted.Load() }

// WorkerBound returns the effective pool size.
func (r *Runner) WorkerBound() int {
	if r.Workers > 0 {
		return r.Workers
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes every point on the bounded pool and returns results in
// point order (independent of scheduling). Exactly WorkerBound worker
// goroutines are spawned no matter how large the grid is; they claim
// points through one atomic cursor, so dispatch costs no channel
// round-trips and no allocation per point. If a Sink is configured the
// results are appended to the per-experiment CSVs, also in point
// order. Points found in the Cache reuse their recorded metrics
// without simulating; fresh executions are stored back. An Interrupt
// leaves the grid incomplete (unexecuted results zero) and suppresses
// the sink append — partial grids must never become artifact rows.
func (r *Runner) Run(points []Point) []Result {
	results := make([]Result, len(points))
	workers := r.WorkerBound()
	if workers > len(points) {
		workers = len(points)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if r.Interrupt != nil && r.Interrupt() {
					r.interrupted.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				if r.Cache != nil {
					if m, errText, ok := r.Cache.Lookup(points[i]); ok {
						results[i] = Result{Point: points[i], Metrics: m, Err: cachedErr(errText)}
						continue
					}
				}
				m, err := points[i].Run(points[i].Seed)
				results[i] = Result{Point: points[i], Metrics: m, Err: err}
				if r.Cache != nil {
					r.Cache.Store(points[i], m, errText(err))
				}
			}
		}()
	}
	wg.Wait()
	if r.Sink != nil && !r.interrupted.Load() {
		r.Sink.AppendRows(results)
	}
	return results
}

// cachedErr reconstructs a point error from its cached text. The
// round-trip is byte-exact for artifacts: the sink and the summaries
// only ever consume err.Error().
func cachedErr(text string) error {
	if text == "" {
		return nil
	}
	return errors.New(text)
}

// Summarize writes an experiment's aggregated results as its JSON
// summary artifact, if a Sink is configured and no Run on this Runner
// was interrupted (a partial grid's aggregate is meaningless and must
// not overwrite a durable artifact).
func (r *Runner) Summarize(experiment string, v interface{}) {
	if r.Sink != nil && !r.interrupted.Load() {
		r.Sink.WriteJSON(experiment, v)
	}
}
