package runner

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// grid builds n points whose metrics are a pure function of the seed,
// mimicking a deterministic simulation.
func grid(exp string, n, repeats int, gauge func()) []Point {
	var pts []Point
	for d := 0; d < n; d++ {
		for rep := 0; rep < repeats; rep++ {
			d := d
			pts = append(pts, Point{
				Experiment: exp,
				Workload:   fmt.Sprintf("wl%d", d%3),
				Params:     map[string]string{"axis": fmt.Sprintf("%d", d), "beta": "x"},
				Repeat:     rep,
				Seed:       PerturbSeed(uint64(d+1), rep),
				Run: func(seed uint64) (Metrics, error) {
					if gauge != nil {
						gauge()
					}
					return Metrics{
						Perf:         float64(seed%97) / 97,
						Transactions: float64(d),
					}, nil
				},
			})
		}
	}
	return pts
}

func TestRunPreservesPointOrder(t *testing.T) {
	r := &Runner{Workers: 4}
	pts := grid("order", 8, 3, nil)
	res := r.Run(pts)
	if len(res) != len(pts) {
		t.Fatalf("got %d results for %d points", len(res), len(pts))
	}
	for i, rr := range res {
		if rr.Seed != pts[i].Seed || rr.Repeat != pts[i].Repeat {
			t.Fatalf("result %d out of order: seed %d vs %d", i, rr.Seed, pts[i].Seed)
		}
		want := float64(pts[i].Seed%97) / 97
		if rr.Metrics.Perf != want {
			t.Fatalf("result %d: perf %v, want %v", i, rr.Metrics.Perf, want)
		}
	}
}

func TestPerturbSeedMatchesHistoricalScheme(t *testing.T) {
	// system.RunPerturbed's scheme: base + i*7919. The grid port must
	// reproduce the same per-run seeds so historical results carry over.
	if got := PerturbSeed(1, 0); got != 1 {
		t.Fatalf("repeat 0: %d", got)
	}
	if got := PerturbSeed(1, 2); got != 1+2*7919 {
		t.Fatalf("repeat 2: %d", got)
	}
}

// TestWorkerPoolBound verifies the satellite requirement: grid execution
// never runs more than the configured number of points at once, and the
// default bound is GOMAXPROCS rather than one goroutine per point.
func TestWorkerPoolBound(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var inFlight, maxSeen atomic.Int64
		var mu sync.Mutex
		gauge := func() {
			cur := inFlight.Add(1)
			mu.Lock()
			if cur > maxSeen.Load() {
				maxSeen.Store(cur)
			}
			mu.Unlock()
			runtime.Gosched() // widen the race window
			inFlight.Add(-1)
		}
		r := &Runner{Workers: workers}
		r.Run(grid("bound", 16, 2, gauge))
		if got := maxSeen.Load(); got > int64(workers) {
			t.Fatalf("workers=%d: observed %d concurrent points", workers, got)
		}
	}
	if def := (&Runner{}).WorkerBound(); def != runtime.GOMAXPROCS(0) {
		t.Fatalf("default bound %d, want GOMAXPROCS=%d", def, runtime.GOMAXPROCS(0))
	}
}

// TestDeterministicCSV verifies the tentpole reproducibility contract:
// the same grid executed twice — even with different worker counts —
// produces byte-identical CSV artifacts.
func TestDeterministicCSV(t *testing.T) {
	dirs := [2]string{t.TempDir(), t.TempDir()}
	for i, workers := range []int{1, 7} {
		sink, err := NewSink(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Workers: workers, Sink: sink}
		r.Run(grid("det", 6, 3, nil))
		r.Summarize("det", map[string]string{"n": "18"})
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"det.csv", "det.json"} {
		a, err := os.ReadFile(filepath.Join(dirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between identical runs:\n%s\n----\n%s", name, a, b)
		}
	}
}

func TestCSVLayout(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 2, Sink: sink}
	pts := grid("layout", 2, 2, nil)
	r.Run(pts)
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "layout.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1+len(pts) {
		t.Fatalf("got %d lines, want header + %d rows:\n%s", len(lines), len(pts), data)
	}
	// Fixed columns, then sorted params, then the full metric schema in
	// sorted order (identical for every experiment by construction),
	// then the per-point error column.
	want := "experiment,workload,repeat,seed,axis,beta," + strings.Join(MetricKeys(), ",") + ",error"
	if lines[0] != want {
		t.Fatalf("header %q, want %q", lines[0], want)
	}
	cells := 7 + len(MetricKeys())
	for i, line := range lines[1:] {
		if !strings.HasPrefix(line, "layout,") {
			t.Fatalf("row %d: %q", i, line)
		}
		if got := len(strings.Split(line, ",")); got != cells {
			t.Fatalf("row %d has %d cells: %q", i, got, line)
		}
	}
}

// TestFailedPointReporting covers the per-point error path: a point
// whose Run returns an error does not abort the grid; its result
// carries the error and its CSV row records it (comma/newline-safe) in
// the error column with zero metrics.
func TestFailedPointReporting(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	pts := grid("mixed", 2, 1, nil)
	pts[1].Run = func(seed uint64) (Metrics, error) {
		return Metrics{}, fmt.Errorf("unsupported machine,\n256 nodes")
	}
	r := &Runner{Workers: 2, Sink: sink}
	res := r.Run(pts)
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatalf("healthy point reported error: %v", res[0].Err)
	}
	if res[1].Err == nil {
		t.Fatal("failing point lost its error")
	}
	data, err := os.ReadFile(filepath.Join(dir, "mixed.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), data)
	}
	if !strings.HasSuffix(lines[1], ",") {
		t.Fatalf("healthy row should end with empty error cell: %q", lines[1])
	}
	if want := ",unsupported machine; 256 nodes"; !strings.HasSuffix(lines[2], want) {
		t.Fatalf("failed row %q missing sanitized error suffix %q", lines[2], want)
	}
	for i, cell := range strings.Split(lines[2], ",") {
		if i >= 6 && i < 6+len(MetricKeys()) && cell != "0" {
			t.Fatalf("failed row metric cell %d = %q, want 0", i, cell)
		}
	}
}

// TestSinkOverwritesPreviousRun checks that pointing -out at a previous
// run's directory reproduces it rather than appending to it.
func TestSinkOverwritesPreviousRun(t *testing.T) {
	dir := t.TempDir()
	var first []byte
	for i := 0; i < 2; i++ {
		sink, err := NewSink(dir)
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Sink: sink}
		r.Run(grid("redo", 3, 2, nil))
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "redo.csv"))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Fatalf("second run into same dir did not reproduce the first:\n%s\n----\n%s", first, data)
		}
	}
}

func TestTimestampedDirShape(t *testing.T) {
	d := TimestampedDir("root")
	base := filepath.Base(d)
	if filepath.Dir(d) != "root" || !strings.HasPrefix(base, "run-") || len(base) != len("run-20060102-150405") {
		t.Fatalf("unexpected dir %q", d)
	}
}

// memCache is an in-memory PointCache for testing the resume hooks.
type memCache struct {
	mu      sync.Mutex
	entries map[string]struct {
		m   Metrics
		err string
	}
	lookups, stores int
}

func newMemCache() *memCache {
	return &memCache{entries: map[string]struct {
		m   Metrics
		err string
	}{}}
}

func cacheKey(p Point) string {
	return fmt.Sprintf("%s/%s/%d/%d/%v", p.Experiment, p.Workload, p.Repeat, p.Seed, p.Params)
}

func (c *memCache) Lookup(p Point) (Metrics, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	e, ok := c.entries[cacheKey(p)]
	return e.m, e.err, ok
}

func (c *memCache) Store(p Point, m Metrics, errText string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores++
	c.entries[cacheKey(p)] = struct {
		m   Metrics
		err string
	}{m, errText}
}

// TestCacheSkipsExecution is the resume-cache contract: a second run of
// the same grid against a populated cache executes nothing and returns
// the same results, errors included.
func TestCacheSkipsExecution(t *testing.T) {
	cache := newMemCache()
	var executed atomic.Int64
	pts := grid("cached", 4, 2, func() { executed.Add(1) })
	pts[3].Run = func(seed uint64) (Metrics, error) {
		executed.Add(1)
		return Metrics{}, fmt.Errorf("illegal config")
	}
	first := (&Runner{Workers: 2, Cache: cache}).Run(pts)
	if got := executed.Load(); got != int64(len(pts)) {
		t.Fatalf("first run executed %d of %d points", got, len(pts))
	}
	if cache.stores != len(pts) {
		t.Fatalf("first run stored %d of %d points", cache.stores, len(pts))
	}
	executed.Store(0)
	second := (&Runner{Workers: 2, Cache: cache}).Run(pts)
	if got := executed.Load(); got != 0 {
		t.Fatalf("cached run executed %d points, want 0", got)
	}
	for i := range first {
		if first[i].Metrics != second[i].Metrics {
			t.Fatalf("point %d metrics differ across cache reuse", i)
		}
		a, b := first[i].Err, second[i].Err
		if (a == nil) != (b == nil) || (a != nil && a.Error() != b.Error()) {
			t.Fatalf("point %d error differs across cache reuse: %v vs %v", i, a, b)
		}
	}
}

// TestInterruptSuppressesArtifacts models a campaign kill: once the
// interrupt fires, workers stop claiming, the sink receives no rows,
// Summarize writes nothing, and the interruption is sticky — but
// everything stored before the kill is durable in the cache.
func TestInterruptSuppressesArtifacts(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := newMemCache()
	r := &Runner{Workers: 1, Sink: sink, Cache: cache,
		Interrupt: func() bool { cache.mu.Lock(); defer cache.mu.Unlock(); return cache.stores >= 2 }}
	r.Run(grid("killed", 6, 1, nil))
	if !r.Interrupted() {
		t.Fatal("runner did not report the interruption")
	}
	if cache.stores != 2 {
		t.Fatalf("stored %d points before the interrupt, want 2", cache.stores)
	}
	r.Summarize("killed", []int{1, 2, 3})
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"killed.csv", "killed.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("interrupted run wrote artifact %s", name)
		}
	}
}
