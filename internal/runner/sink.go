// Artifact persistence for the sweep engine: CSV rows per run, JSON
// summaries per experiment, and a run manifest, all under one output
// directory (see EXPERIMENTS.md "Artifact layout").
package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sink writes sweep artifacts into a single output directory. All
// methods are safe for concurrent use; the first error encountered is
// retained and reported by Err, so drivers can emit unconditionally and
// callers check once at the end.
type Sink struct {
	dir string

	mu      sync.Mutex
	err     error
	columns map[string][]string // experiment -> CSV header, fixed at first write
}

// NewSink creates (if needed) the output directory and returns a sink
// writing into it.
func NewSink(dir string) (*Sink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: create output dir: %w", err)
	}
	return &Sink{dir: dir, columns: map[string][]string{}}, nil
}

// RunDir returns "<root>/run-<id>": the deterministic run-directory
// naming used when the caller supplies an explicit run ID. Two
// invocations with the same ID land in the same directory and (by the
// sink's truncate-on-first-write rule) reproduce the same bytes.
func RunDir(root, id string) string {
	return filepath.Join(root, "run-"+id)
}

// TimestampedDir returns "<root>/run-YYYYMMDD-HHMMSS" for callers that
// want a fresh run directory under a stable root without naming it.
// Prefer RunDir with an explicit ID when artifacts must be
// reproducible; this fallback is inherently wall-clock-named.
func TimestampedDir(root string) string {
	//detlint:allow walltime sanctioned wall-clock fallback for unnamed runs; -run-id selects RunDir instead
	return filepath.Join(root, "run-"+time.Now().Format("20060102-150405"))
}

// Dir returns the output directory.
func (s *Sink) Dir() string { return s.dir }

// Err returns the first error any write encountered, or nil.
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Sink) fail(err error) {
	if s.err == nil && err != nil {
		s.err = err
	}
}

// AppendRows appends one CSV row per result to each result's
// per-experiment CSV file (<experiment>.csv), creating the file with a
// header on first use. Rows are written in slice order; the header —
// experiment, workload, repeat, seed, sorted param keys, sorted metric
// keys, error — is fixed by the experiment's first row. Values are
// formatted with the shortest round-trip representation, so identical
// grids reproduce identical bytes. Failed points (Result.Err) land as
// rows with zero metrics and the error message in the final column.
func (s *Sink) AppendRows(results []Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	files := map[string]*os.File{}
	defer func() {
		// Close in experiment order so the retained first error (and any
		// flush-time failure it reports) is the same on every run.
		for _, name := range sortedKeys(files) {
			if err := files[name].Close(); err != nil {
				s.fail(err)
			}
		}
	}()
	for i := range results {
		r := &results[i]
		cols, seen := s.columns[r.Experiment]
		if !seen {
			cols = append([]string{"experiment", "workload", "repeat", "seed"},
				append(sortedKeys(r.Params), metricKeys...)...)
			cols = append(cols, "error")
			s.columns[r.Experiment] = cols
		}
		f := files[r.Experiment]
		if f == nil {
			// The sink's first write to an experiment truncates any file
			// left by a previous run into the same directory, so a
			// repeated invocation reproduces artifacts byte for byte.
			mode := os.O_CREATE | os.O_WRONLY | os.O_APPEND
			if !seen {
				mode = os.O_CREATE | os.O_WRONLY | os.O_TRUNC
			}
			var err error
			f, err = os.OpenFile(filepath.Join(s.dir, r.Experiment+".csv"), mode, 0o644)
			if err != nil {
				s.fail(err)
				return
			}
			files[r.Experiment] = f
			if !seen {
				if _, err := f.WriteString(strings.Join(cols, ",") + "\n"); err != nil {
					s.fail(err)
					return
				}
			}
		}
		row := make([]string, 0, len(cols))
		for _, c := range cols {
			switch c {
			case "experiment":
				row = append(row, r.Experiment)
			case "workload":
				row = append(row, r.Workload)
			case "repeat":
				row = append(row, strconv.Itoa(r.Repeat))
			case "seed":
				row = append(row, strconv.FormatUint(r.Seed, 10))
			case "error":
				row = append(row, csvSafe(errText(r.Err)))
			default:
				if v, ok := r.Params[c]; ok {
					row = append(row, v)
				} else {
					row = append(row, strconv.FormatFloat(r.Metrics.Get(c), 'g', -1, 64))
				}
			}
		}
		if _, err := f.WriteString(strings.Join(row, ",") + "\n"); err != nil {
			s.fail(err)
			return
		}
	}
}

// WriteJSON writes <name>.json with the indented JSON encoding of v —
// the per-experiment summary artifact, or the run manifest.
func (s *Sink) WriteJSON(name string, v interface{}) {
	data, err := json.MarshalIndent(v, "", "  ")
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.fail(err)
		return
	}
	s.fail(os.WriteFile(filepath.Join(s.dir, name+".json"), append(data, '\n'), 0o644))
}

// Manifest records how a run was produced. It is the only artifact
// that may carry wall-clock state; CSVs and summaries stay
// byte-reproducible. Runs named by an explicit run ID set RunID and
// leave StartedAt zero (omitted), so their manifests are
// byte-reproducible too.
type Manifest struct {
	StartedAt   time.Time `json:"started_at,omitzero"`
	RunID       string    `json:"run_id,omitempty"`
	Command     string    `json:"command"`
	Experiments []string  `json:"experiments"`
	Workers     int       `json:"workers"`
	Quick       bool      `json:"quick"`
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// csvSafe strips the characters that would break the line-per-row,
// comma-separated artifact format out of free-form error text.
func csvSafe(s string) string {
	return strings.NewReplacer(",", ";", "\n", " ", "\r", " ").Replace(s)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
