package cache

import (
	"testing"
	"testing/quick"

	"specsimp/internal/coherence"
)

func TestNewGeometry(t *testing.T) {
	c := New(128*1024, 4) // paper L1: 128 KB 4-way
	if c.NumSets() != 512 || c.Ways() != 4 {
		t.Fatalf("geometry %d sets x %d ways, want 512x4", c.NumSets(), c.Ways())
	}
	c2 := New(4*1024*1024, 4) // paper L2: 4 MB 4-way
	if c2.NumSets() != 16384 {
		t.Fatalf("L2 sets=%d want 16384", c2.NumSets())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two sets")
		}
	}()
	New(3*64, 1)
}

func TestInstallLookupPeek(t *testing.T) {
	c := New(1024, 2)
	a := coherence.Addr(0x1000)
	f := c.Victim(a, nil)
	c.Install(f, a, 3, 7)
	l := c.Lookup(a)
	if l == nil || l.State != 3 || l.Version != 7 {
		t.Fatalf("lookup after install: %+v", l)
	}
	if c.Peek(a) == nil {
		t.Fatal("peek missed installed line")
	}
	if c.Peek(0x9999000) != nil {
		t.Fatal("peek hit absent line")
	}
}

func TestBlockAliasing(t *testing.T) {
	c := New(1024, 2)
	f := c.Victim(0x1000, nil)
	c.Install(f, 0x1000, 1, 1)
	if c.Lookup(0x1004) == nil {
		t.Fatal("offset within same block missed")
	}
	if c.Lookup(0x1040) != nil {
		t.Fatal("adjacent block falsely hit")
	}
}

func TestLRUVictimSelection(t *testing.T) {
	c := New(2*64, 2) // 1 set, 2 ways
	c.Install(c.Victim(0x000, nil), 0x000, 1, 0)
	c.Install(c.Victim(0x040, nil), 0x040, 1, 0)
	c.Lookup(0x000) // touch: 0x040 is now LRU
	v := c.Victim(0x080, nil)
	if v.Addr != 0x040 {
		t.Fatalf("victim=%#x want 0x40 (LRU)", uint64(v.Addr))
	}
}

func TestVictimHonorsPin(t *testing.T) {
	c := New(2*64, 2)
	c.Install(c.Victim(0x000, nil), 0x000, 9, 0)
	c.Install(c.Victim(0x040, nil), 0x040, 9, 0)
	pinned := func(l *Line) bool { return l.State != 9 }
	if v := c.Victim(0x080, pinned); v != nil {
		t.Fatalf("victim %+v returned despite all ways pinned", v)
	}
	c.Peek(0x040).State = 2
	v := c.Victim(0x080, pinned)
	if v == nil || v.Addr != 0x040 {
		t.Fatalf("victim=%v want the unpinned 0x40", v)
	}
}

func TestInvalidateAndClear(t *testing.T) {
	c := New(1024, 2)
	c.Install(c.Victim(0x100, nil), 0x100, 1, 0)
	c.Install(c.Victim(0x200, nil), 0x200, 1, 0)
	c.Invalidate(0x100)
	if c.Peek(0x100) != nil {
		t.Fatal("line survived invalidate")
	}
	if c.CountValid() != 1 {
		t.Fatalf("CountValid=%d want 1", c.CountValid())
	}
	c.Clear()
	if c.CountValid() != 0 {
		t.Fatal("lines survived Clear")
	}
}

func TestForEachVisitsAllValid(t *testing.T) {
	c := New(4096, 4)
	want := map[coherence.Addr]bool{}
	for i := 0; i < 20; i++ {
		a := coherence.Addr(i * 64)
		c.Install(c.Victim(a, nil), a, 1, 0)
		want[a] = true
	}
	got := map[coherence.Addr]bool{}
	c.ForEach(func(l *Line) { got[l.Addr] = true })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d lines, want %d", len(got), len(want))
	}
}

// Property: a cache never holds two valid lines for the same block, and
// capacity is never exceeded, under arbitrary install/invalidate traffic.
func TestCacheUniquenessProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(16*64, 2) // tiny: 8 sets x 2 ways
		for _, op := range ops {
			a := coherence.Addr(op&0x3ff) * 64
			if op&0x8000 != 0 {
				c.Invalidate(a)
				continue
			}
			if c.Peek(a) != nil {
				continue
			}
			if v := c.Victim(a, nil); v != nil {
				c.Install(v, a, 1, 0)
			}
		}
		seen := map[coherence.Addr]int{}
		c.ForEach(func(l *Line) { seen[l.Addr]++ })
		for _, n := range seen {
			if n > 1 {
				return false
			}
		}
		return c.CountValid() <= 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
