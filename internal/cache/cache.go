// Package cache models set-associative cache arrays with LRU
// replacement. A Line stores the protocol-visible coherence state (an
// opaque uint8 interpreted by the protocol packages) and the block's
// data version (the simulator's stand-in for data values: every store
// increments the version, so coherence bugs become visible as version
// mismatches).
package cache

import (
	"fmt"

	"specsimp/internal/coherence"
)

// Line is one cache block frame.
type Line struct {
	Addr    coherence.Addr
	Valid   bool
	State   uint8
	Version uint64
	lastUse uint64
}

// Cache is a set-associative array. The zero value is not usable; use New.
type Cache struct {
	sets     [][]Line
	numSets  int
	ways     int
	useClock uint64
}

// New builds a cache of sizeBytes capacity with the given associativity
// and 64-byte blocks. sizeBytes must yield a power-of-two set count.
func New(sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic("cache: size and ways must be positive")
	}
	numSets := sizeBytes / (ways * coherence.BlockBytes)
	if numSets == 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache: %d bytes / %d ways yields non-power-of-two set count %d", sizeBytes, ways, numSets))
	}
	c := &Cache{numSets: numSets, ways: ways}
	c.sets = make([][]Line, numSets)
	backing := make([]Line, numSets*ways)
	for i := range c.sets {
		c.sets[i] = backing[i*ways : (i+1)*ways]
	}
	return c
}

// NumSets returns the set count.
func (c *Cache) NumSets() int { return c.numSets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) set(a coherence.Addr) []Line {
	idx := (uint64(a) / coherence.BlockBytes) & uint64(c.numSets-1)
	return c.sets[idx]
}

// Lookup returns the line holding block a, updating LRU, or nil.
func (c *Cache) Lookup(a coherence.Addr) *Line {
	a = coherence.BlockAddr(a)
	set := c.set(a)
	for i := range set {
		if set[i].Valid && set[i].Addr == a {
			c.useClock++
			set[i].lastUse = c.useClock
			return &set[i]
		}
	}
	return nil
}

// Peek returns the line holding block a without updating LRU, or nil.
func (c *Cache) Peek(a coherence.Addr) *Line {
	a = coherence.BlockAddr(a)
	set := c.set(a)
	for i := range set {
		if set[i].Valid && set[i].Addr == a {
			return &set[i]
		}
	}
	return nil
}

// Victim selects the frame an insertion of block a would use: an invalid
// way if one exists, else the least-recently-used way whose line
// canEvict approves. It returns nil if every way is pinned (the caller
// must stall). canEvict==nil approves everything.
func (c *Cache) Victim(a coherence.Addr, canEvict func(*Line) bool) *Line {
	set := c.set(coherence.BlockAddr(a))
	for i := range set {
		if !set[i].Valid {
			return &set[i]
		}
	}
	var victim *Line
	for i := range set {
		if canEvict != nil && !canEvict(&set[i]) {
			continue
		}
		if victim == nil || set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	return victim
}

// Install fills frame (obtained from Victim) with block a in the given
// state. The caller must have dealt with the victim's contents first.
func (c *Cache) Install(frame *Line, a coherence.Addr, state uint8, version uint64) {
	c.useClock++
	*frame = Line{Addr: coherence.BlockAddr(a), Valid: true, State: state, Version: version, lastUse: c.useClock}
}

// Invalidate removes block a if present.
func (c *Cache) Invalidate(a coherence.Addr) {
	if l := c.Peek(a); l != nil {
		l.Valid = false
	}
}

// ForEachSetLRU visits every valid line set by set, ordering the lines
// within a set by recency (least recently used first) — the canonical
// order for state fingerprinting: two caches behave identically under
// future lookups and victim choices iff their per-set LRU rankings and
// contents match, regardless of absolute useClock values. The callback
// must not insert or remove lines.
func (c *Cache) ForEachSetLRU(fn func(set int, l *Line)) {
	order := make([]int, c.ways)
	for s := range c.sets {
		set := c.sets[s]
		n := 0
		for w := range set {
			if set[w].Valid {
				order[n] = w
				n++
			}
		}
		// Insertion sort by lastUse (ways are small).
		for i := 1; i < n; i++ {
			for j := i; j > 0 && set[order[j]].lastUse < set[order[j-1]].lastUse; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for i := 0; i < n; i++ {
			fn(s, &set[order[i]])
		}
	}
}

// ForEach visits every valid line. The callback must not insert or
// remove lines.
func (c *Cache) ForEach(fn func(*Line)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Valid {
				fn(&c.sets[s][w])
			}
		}
	}
}

// CountValid returns the number of valid lines.
func (c *Cache) CountValid() int {
	n := 0
	c.ForEach(func(*Line) { n++ })
	return n
}

// Clear invalidates every line (used when a recovery rebuilds cache
// contents from the checkpoint log).
func (c *Cache) Clear() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w].Valid = false
		}
	}
}
