// Package specsimp is a from-scratch reproduction of
//
//	Sorin, Martin, Hill & Wood,
//	"Using Speculation to Simplify Multiprocessor Design", IPDPS 2004.
//
// It provides the paper's speculation-for-simplicity framework
// (detect / recover / guarantee forward progress), complete simulated
// substrates — a 2D-torus interconnect with static and adaptive routing,
// MOSI directory and broadcast-snooping cache coherence protocols in
// both "full" and "speculatively simplified" variants, a SafetyNet-style
// global checkpoint/recovery service, blocking processors, and synthetic
// commercial workloads — plus the full evaluation harness regenerating
// every table and figure of the paper (see EXPERIMENTS.md).
//
// # Quick start
//
//	cfg := specsimp.DefaultConfig(specsimp.DirectorySpec, specsimp.OLTP)
//	res := specsimp.RunOne(cfg, 1_000_000)
//	fmt.Printf("perf=%.3f recoveries=%d\n", res.Perf, res.Recoveries)
//
// The root package is a facade over the implementation packages; see
// DESIGN.md for the system inventory and the per-experiment index.
package specsimp

import (
	"specsimp/internal/core"
	"specsimp/internal/experiments"
	"specsimp/internal/network"
	"specsimp/internal/sim"
	"specsimp/internal/system"
	"specsimp/internal/workload"
)

// Time is simulated time in processor cycles.
type Time = sim.Time

// Kernel is the deterministic discrete-event simulation kernel.
type Kernel = sim.Kernel

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel { return sim.NewKernel() }

// ---- systems ----

// Config describes one simulated machine (paper Table 2 defaults via
// DefaultConfig).
type Config = system.Config

// Results summarizes a run.
type Results = system.Results

// System is a built machine bound to a kernel.
type System = system.System

// Kind selects the coherence protocol and variant.
type Kind = system.Kind

// System kinds: directory or snooping protocol, full or speculatively
// simplified variant.
const (
	DirectoryFull = system.DirectoryFull
	DirectorySpec = system.DirectorySpec
	SnoopFull     = system.SnoopFull
	SnoopSpec     = system.SnoopSpec
)

// DefaultConfig returns the paper's Table 2 target system.
func DefaultConfig(kind Kind, wl Workload) Config { return system.DefaultConfig(kind, wl) }

// Build constructs a system from a config. It panics on an invalid
// configuration; BuildChecked returns the error instead.
func Build(cfg Config) *System { return system.Build(cfg) }

// BuildChecked constructs a system, reporting invalid configurations
// (oversize machines, bad geometry) as errors before anything is built.
func BuildChecked(cfg Config) (*System, error) { return system.BuildChecked(cfg) }

// ValidateConfig checks a configuration without building it: network
// geometry, the directory sharer-set format's node ceiling, and the
// snooping size cap.
func ValidateConfig(cfg Config) error { return system.ValidateConfig(cfg) }

// RunOne builds, starts, and runs a system for the given cycles.
func RunOne(cfg Config, cycles Time) Results { return system.RunOne(cfg, cycles) }

// RunOneChecked is RunOne with configuration errors returned instead of
// panicking — the sweep engine reports them per design point.
func RunOneChecked(cfg Config, cycles Time) (Results, error) {
	return system.RunOneChecked(cfg, cycles)
}

// PerturbedResult aggregates perturbed runs (paper §5.2 methodology).
type PerturbedResult = system.PerturbedResult

// RunPerturbed executes n seed-perturbed runs in parallel.
func RunPerturbed(cfg Config, n int, cycles Time) PerturbedResult {
	return system.RunPerturbed(cfg, n, cycles)
}

// ---- workloads (paper Table 3) ----

// Workload parameterizes a synthetic reference stream.
type Workload = workload.Profile

// The evaluation workloads (paper Table 3) and two calibration
// profiles.
var (
	OLTP    = workload.OLTP
	JBB     = workload.JBB
	Apache  = workload.Apache
	Slash   = workload.Slash
	Barnes  = workload.Barnes
	Uniform = workload.Uniform
	Hotspot = workload.Hotspot
)

// The sharing-idiom streams (workload/idioms.go): pure sharing patterns
// the protocols were not calibrated against.
var (
	MigratoryChain = workload.MigratoryChain
	Ring           = workload.Ring
	Scan           = workload.Scan
	Broadcast      = workload.Broadcast
)

// WorkloadSuite is the paper's five evaluation workloads.
func WorkloadSuite() []Workload { return append([]Workload(nil), workload.Suite...) }

// WorkloadIdioms is the sharing-idiom evaluation set.
func WorkloadIdioms() []Workload { return append([]Workload(nil), workload.Idioms...) }

// WorkloadNames lists every registered workload name.
func WorkloadNames() []string { return workload.Names() }

// WorkloadByName resolves a workload by its name (including the
// "trace:<path>" scheme).
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// ResolveWorkload is WorkloadByName with a descriptive error: unknown
// names list the registry, bad trace files report the decode failure.
func ResolveWorkload(name string) (Workload, error) { return workload.Resolve(name) }

// WorkloadFromTrace loads a recorded trace file as a replayable
// workload (equivalent to ResolveWorkload("trace:" + path)).
func WorkloadFromTrace(path string) (Workload, error) { return workload.FromTrace(path) }

// TraceRecorder captures the reference streams a run actually consumes;
// set Config.Recorder to record, then write Trace() to a file for
// -workload trace:<path> replay.
type TraceRecorder = workload.TraceRecorder

// NewTraceRecorder records a run of the named workload across nodes.
func NewTraceRecorder(name string, nodes int) *TraceRecorder {
	return workload.NewTraceRecorder(name, nodes)
}

// ---- interconnect ----

// NetConfig describes an interconnect instance.
type NetConfig = network.Config

// Network is the 2D torus interconnect.
type Network = network.Network

// NetMessage is a network-level message.
type NetMessage = network.Message

// Routing policies.
const (
	Static   = network.Static
	Adaptive = network.Adaptive
)

// SafeStaticConfig is the provably deadlock-free baseline network
// (dimension-order routing, virtual networks, dateline virtual
// channels).
func SafeStaticConfig(w, h int, bw float64) NetConfig { return network.SafeStaticConfig(w, h, bw) }

// AdaptiveNetConfig is the paper §3.1 adaptively routed network with
// full buffering; it does not preserve point-to-point ordering.
func AdaptiveNetConfig(w, h int, bw float64) NetConfig { return network.AdaptiveConfig(w, h, bw) }

// SimplifiedNetConfig is the paper §4 network: no virtual networks or
// channels, one shared finite buffer pool per switch; deadlock is
// possible and recovered from rather than avoided.
func SimplifiedNetConfig(w, h int, bw float64, bufSize int) NetConfig {
	return network.SimplifiedConfig(w, h, bw, bufSize)
}

// DeflectionNetConfig is the §4 alternative the paper mentions:
// hot-potato routing, which trades buffer-cycle deadlock for potential
// livelock (detected by the same transaction timeout, footnote 3).
func DeflectionNetConfig(w, h int, bw float64) NetConfig {
	return network.DeflectionConfig(w, h, bw)
}

// NewNetwork builds a standalone network on a kernel (for
// network-level studies; systems build their own).
func NewNetwork(k *Kernel, cfg NetConfig) *Network { return network.New(k, cfg) }

// ---- the speculation framework (the paper's contribution) ----

// Speculation describes one application of speculation for simplicity.
type Speculation = core.Speculation

// Characterization is one row of the paper's Table 1.
type Characterization = core.Characterization

// The paper's three applications of speculation for simplicity.
var (
	P2POrdering  = core.P2POrdering
	SnoopCorner  = core.SnoopCorner
	NoVCDeadlock = core.NoVCDeadlock
)

// Table1 renders the framework characterization (paper Table 1).
func Table1() string { return core.Table1(P2POrdering, SnoopCorner, NoVCDeadlock) }

// Table2 renders the target system parameters (paper Table 2).
func Table2(cfg Config) string { return system.Table2(cfg) }

// ---- evaluation harness ----

// ExperimentParams sizes an experiment.
type ExperimentParams = experiments.Params

// QuickParams returns bench-sized experiment parameters; StandardParams
// returns the EXPERIMENTS.md parameters.
func QuickParams() ExperimentParams    { return experiments.Quick() }
func StandardParams() ExperimentParams { return experiments.Standard() }

// Experiment drivers, one per paper artifact. See the experiments
// package and EXPERIMENTS.md for details.
var (
	Fig4            = experiments.Fig4
	Fig4Table       = experiments.Fig4Table
	Fig5            = experiments.Fig5
	Fig5Table       = experiments.Fig5Table
	ReorderRates    = experiments.ReorderRates
	ReorderTable    = experiments.ReorderTable
	SnoopRecoveries = experiments.SnoopRecoveries
	SnoopTable      = experiments.SnoopTable
	BufferSweep     = experiments.BufferSweep
	BufferTable     = experiments.BufferTable
	ScaleSweep      = experiments.ScaleSweep
	ScaleTable      = experiments.ScaleTable
	Scale1024Sweep  = experiments.Scale1024Sweep
	Scale1024Table  = experiments.Scale1024Table
	Workloads       = experiments.Workloads
	WorkloadsTable  = experiments.WorkloadsTable
)

// DefaultConfigSized returns the Table 2 system scaled to a w×h torus.
// Directory systems scale to 32×32 (1024 nodes) — the sharer-set format
// is picked from the geometry (exact bitmap up to 64 nodes,
// limited-pointer with broadcast overflow beyond); snooping systems run
// a flat bus to 64 nodes and the segmented address network to 256
// (ValidateConfig reports why past that).
func DefaultConfigSized(kind Kind, wl Workload, w, h int) Config {
	return system.DefaultConfigSized(kind, wl, w, h)
}
