// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark runs the corresponding experiment
// driver at bench scale and reports the headline numbers as custom
// metrics; `go test -bench . -benchmem` therefore reproduces the whole
// evaluation. cmd/sweep prints the same results as full tables at
// EXPERIMENTS.md scale.
package specsimp

import (
	"strconv"
	"testing"

	"specsimp/internal/experiments"
	"specsimp/internal/runner"
	"specsimp/internal/sim"
	"specsimp/internal/system"
	"specsimp/internal/workload"
)

func benchParams() experiments.Params {
	p := experiments.Quick()
	p.Runs = 1
	return p
}

// BenchmarkTable1Characterize covers Table 1: rendering the framework
// characterization of the three speculative designs.
func BenchmarkTable1Characterize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2System covers Table 2: building the full target system
// from its parameter table.
func BenchmarkTable2System(b *testing.B) {
	cfg := DefaultConfig(DirectorySpec, OLTP)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := Build(cfg)
		if s == nil {
			b.Fatal("build failed")
		}
	}
}

// BenchmarkTable3Workloads covers Table 3: generating each workload's
// reference stream.
func BenchmarkTable3Workloads(b *testing.B) {
	for _, wl := range WorkloadSuite() {
		wl := wl
		b.Run(wl.Name, func(b *testing.B) {
			g := workload.New(wl, 0, 16, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Peek()
				g.Advance()
			}
		})
	}
}

// BenchmarkZipfStream measures the workload-realism hot path: one
// reference of a Zipf-skewed, phase-shifting stream (Hörmann
// rejection-inversion sample + Feistel block permutation + phase
// offset). Tracked in BENCH_kernel.json; must stay allocation-free.
func BenchmarkZipfStream(b *testing.B) {
	wl := OLTP
	wl.ZipfSkew = 1.1
	wl.PhaseLen = 2048
	g := workload.New(wl, 0, 16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Peek()
		g.Advance()
	}
}

// BenchmarkFig1Reorder covers Figure 1: the adaptive network reordering
// two same-source messages under congestion.
func BenchmarkFig1Reorder(b *testing.B) {
	reorders := 0
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		net := NewNetwork(k, AdaptiveNetConfig(4, 4, 1.0))
		net.AttachClient(5, NetClientFunc(func(m *NetMessage) bool { return true }))
		net.Send(&NetMessage{Src: 0, Dst: 5, VNet: 1, Size: 2000})
		k.At(1, func() { net.Send(&NetMessage{Src: 0, Dst: 5, VNet: 1, Size: 8}) })
		k.Drain(1_000_000)
		reorders += int(net.Stats().Reordered[1].Value())
	}
	b.ReportMetric(float64(reorders)/float64(b.N), "reorders/op")
	if reorders != b.N {
		b.Fatalf("Figure 1 scenario reordered %d/%d times", reorders, b.N)
	}
}

// BenchmarkFig23Deadlock covers Figures 2 and 3: driving the simplified
// (no-VC) network into deadlock.
func BenchmarkFig23Deadlock(b *testing.B) {
	stuck := 0
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		net := NewNetwork(k, SimplifiedNetConfig(4, 4, 1.0, 1))
		for n := 0; n < 16; n++ {
			net.AttachClient(NetNodeID(n), NetClientFunc(func(m *NetMessage) bool { return true }))
		}
		for s := 0; s < 16; s++ {
			for d := 0; d < 16; d++ {
				if s != d {
					net.Send(&NetMessage{Src: NetNodeID(s), Dst: NetNodeID(d), VNet: 0, Size: 72})
				}
			}
		}
		k.Drain(10_000_000)
		stuck += net.InFlight()
	}
	b.ReportMetric(float64(stuck)/float64(b.N), "stuck-msgs/op")
}

// BenchmarkFig4 covers Figure 4: normalized performance vs injected
// mis-speculation rate on the non-speculative directory system.
func BenchmarkFig4(b *testing.B) {
	p := benchParams()
	p.Workloads = []workload.Profile{workload.OLTP}
	for i := 0; i < b.N; i++ {
		res := Fig4(p)
		r := res[0]
		b.ReportMetric(r.PerfByRate[1].Mean, "perf@1/s")
		b.ReportMetric(r.PerfByRate[10].Mean, "perf@10/s")
		b.ReportMetric(r.PerfByRate[100].Mean, "perf@100/s")
		b.ReportMetric(r.MeanLostWork, "lost-cycles/recovery")
	}
}

// BenchmarkFig5 covers Figure 5: static vs adaptive routing at 400 MB/s
// links under the speculative directory protocol.
func BenchmarkFig5(b *testing.B) {
	p := benchParams()
	for _, wl := range WorkloadSuite() {
		wl := wl
		b.Run(wl.Name, func(b *testing.B) {
			pw := p
			pw.Workloads = []workload.Profile{wl}
			for i := 0; i < b.N; i++ {
				r := Fig5(pw)[0]
				b.ReportMetric(r.AdaptivePerf.Mean, "adaptive-vs-static")
				b.ReportMetric(r.Recoveries, "recoveries")
				b.ReportMetric(100*r.MeanLinkUtil, "static-link-util-%")
			}
		})
	}
}

// BenchmarkReorderRates covers the §5.3 reorder-rate study across the
// paper's 400 MB/s – 3.2 GB/s link bandwidth range.
func BenchmarkReorderRates(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := ReorderRates(p, workload.OLTP)
		lo, hi := res[0], res[len(res)-1]
		b.ReportMetric(lo.PerVNet[1], "fwd-reorder@400MB/s")
		b.ReportMetric(hi.PerVNet[1], "fwd-reorder@3.2GB/s")
		b.ReportMetric(lo.Recoveries, "recoveries@400MB/s")
	}
}

// BenchmarkSnoopRecoveries covers the §5.3 snooping result: the
// speculative snooping protocol across all workloads, counting corner-
// case recoveries (the paper observed none).
func BenchmarkSnoopRecoveries(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := SnoopRecoveries(p)
		var detected, perf float64
		for _, r := range res {
			detected += r.CornerDetected
			perf += r.Perf.Mean
		}
		b.ReportMetric(detected, "corner-recoveries")
		b.ReportMetric(perf/float64(len(res)), "spec-vs-full-perf")
	}
}

// BenchmarkBufferSweep covers the §5.3 interconnect result: performance
// across shared-pool buffer sizes on the no-VC network, with the
// deadlock cliff at tiny buffers.
func BenchmarkBufferSweep(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := BufferSweep(p, workload.OLTP)
		for _, r := range res {
			if r.BufferSize == 8 {
				b.ReportMetric(r.Perf.Mean, "perf@8")
			}
			if r.BufferSize == 2 {
				b.ReportMetric(r.Perf.Mean, "perf@2")
				b.ReportMetric(r.Recoveries, "recoveries@2")
			}
		}
	}
}

// BenchmarkSlowStartAblation covers ablation A2: post-recovery
// outstanding-transaction limits on the deadlock-prone network.
func BenchmarkSlowStartAblation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := experiments.SlowStartAblation(p, workload.Hotspot, []int{1, 8})
		b.ReportMetric(res[0].Perf.Mean, "perf@limit1")
		b.ReportMetric(res[1].Perf.Mean, "perf@limit8")
	}
}

// BenchmarkDeflectionAblation covers extension A4: deadlock-recovery
// vs deflection routing at the deadlock-prone operating point.
func BenchmarkDeflectionAblation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := experiments.DeflectionAblation(p, workload.OLTP)
		b.ReportMetric(res[0].Recoveries, "recoveries-simplified")
		b.ReportMetric(res[1].Recoveries, "recoveries-deflection")
		b.ReportMetric(res[1].Deflections, "deflections")
	}
}

// BenchmarkCheckpointAblation covers ablation A3: checkpoint interval
// vs log occupancy and checkpoint stall.
func BenchmarkCheckpointAblation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := experiments.CheckpointAblation(p, workload.Uniform, []sim.Time{2_000, 20_000})
		b.ReportMetric(res[0].LogHighWater, "logbytes@2k")
		b.ReportMetric(res[1].LogHighWater, "logbytes@20k")
	}
}

// BenchmarkRunnerGrid measures the sweep engine's scheduling overhead:
// dispatching a 256-point grid of trivial points through the bounded
// worker pool, i.e. the harness cost on top of the simulations.
func BenchmarkRunnerGrid(b *testing.B) {
	pts := make([]runner.Point, 256)
	for i := range pts {
		pts[i] = runner.Point{
			Experiment: "bench",
			Workload:   "none",
			Params:     map[string]string{"i": strconv.Itoa(i)},
			Seed:       runner.PerturbSeed(1, i),
			Run: func(seed uint64) (runner.Metrics, error) {
				return runner.Metrics{Perf: float64(seed)}, nil
			},
		}
	}
	r := &runner.Runner{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := r.Run(pts); len(res) != len(pts) {
			b.Fatal("dropped results")
		}
	}
	b.ReportMetric(float64(len(pts)), "points/op")
}

// BenchmarkRunOne measures the sweeps' unit of work end to end: build,
// start and run the default speculative system for 100k cycles through
// the facade's RunOne. BENCH_kernel.json tracks its ns/op and allocs/op
// across PRs; CI runs it at short benchtime as a regression smoke.
func BenchmarkRunOne(b *testing.B) {
	cfg := DefaultConfig(DirectorySpec, OLTP)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := RunOne(cfg, 100_000)
		if res.Instructions == 0 {
			b.Fatal("no forward progress")
		}
	}
	b.ReportMetric(100_000, "sim-cycles/op")
}

// BenchmarkRunOne8x8 is the serial baseline for the intra-run sharding
// benchmark below: the classic single-kernel path at the 64-node
// geometry that dominates scale64 wall-clock.
func BenchmarkRunOne8x8(b *testing.B) {
	cfg := DefaultConfigSized(DirectorySpec, OLTP, 8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := RunOne(cfg, 100_000)
		if res.Instructions == 0 {
			b.Fatal("no forward progress")
		}
	}
	b.ReportMetric(100_000, "sim-cycles/op")
}

// BenchmarkRunOneSharded measures the conservative-window parallel
// intra-run path: the same 8×8 run split into 2 column-strip shards
// (bit-identical results — the equivalence tests enforce it). Tracked
// in BENCH_kernel.json against BenchmarkRunOne8x8; the win over the
// serial baseline comes from the leaner windowed hot path (no spurious
// credit wake-ups, occupancy-bitmap time advance) plus, on hosts with
// cores to spare, actual parallel window execution.
func BenchmarkRunOneSharded(b *testing.B) {
	cfg := DefaultConfigSized(DirectorySpec, OLTP, 8, 8)
	cfg.Shards = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := RunOne(cfg, 100_000)
		if res.Instructions == 0 {
			b.Fatal("no forward progress")
		}
	}
	b.ReportMetric(100_000, "sim-cycles/op")
	b.ReportMetric(2, "shards/op")
}

// BenchmarkRunOne16x16 is the serial baseline at the 256-node geometry
// the 2D tile substrate targets: the classic single-kernel path on the
// largest machine the scale64 study runs.
func BenchmarkRunOne16x16(b *testing.B) {
	cfg := DefaultConfigSized(DirectorySpec, OLTP, 16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := RunOne(cfg, 100_000)
		if res.Instructions == 0 {
			b.Fatal("no forward progress")
		}
	}
	b.ReportMetric(100_000, "sim-cycles/op")
}

// BenchmarkRunOne16x16Tiled measures the 2D-tile intra-run path: the
// same 16×16 run split into a 2×2 tile grid (bit-identical results —
// the equivalence tests enforce it). Tracked in BENCH_kernel.json
// against BenchmarkRunOne16x16; the win over the serial baseline comes
// from the leaner windowed hot path plus the lookahead-pruned O(5N)
// boundary drains, plus actual parallel window execution on hosts with
// cores to spare.
func BenchmarkRunOne16x16Tiled(b *testing.B) {
	cfg := DefaultConfigSized(DirectorySpec, OLTP, 16, 16)
	cfg.Shards = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := RunOne(cfg, 100_000)
		if res.Instructions == 0 {
			b.Fatal("no forward progress")
		}
	}
	b.ReportMetric(100_000, "sim-cycles/op")
	b.ReportMetric(4, "tiles/op")
}

// BenchmarkSystemThroughput measures raw simulator speed: simulated
// cycles per host second for the default speculative system.
func BenchmarkSystemThroughput(b *testing.B) {
	cfg := DefaultConfig(DirectorySpec, OLTP)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := Build(cfg)
		s.Start()
		s.Run(100_000)
	}
	b.ReportMetric(100_000, "sim-cycles/op")
}

// BenchmarkRecoveryCost measures one full SafetyNet recovery
// (rollback + reset + restore) on a warmed-up system.
func BenchmarkRecoveryCost(b *testing.B) {
	cfg := DefaultConfig(DirectoryFull, workload.Uniform)
	cfg.CheckpointInterval = 5_000
	s := Build(cfg)
	s.Start()
	s.Run(100_000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Coord.TriggerMisSpeculation("bench")
		s.Run(sim.Time(20_000))
	}
	b.ReportMetric(s.Coord.MeanLostWork(), "lost-cycles")
}

// BenchmarkSnoopBusThroughput measures ordered-request throughput of
// the snooping address network with all 16 observers attached.
func BenchmarkSnoopBusThroughput(b *testing.B) {
	cfg := system.DefaultConfig(system.SnoopFull, workload.Uniform)
	s := system.Build(cfg)
	s.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(10_000)
	}
	b.ReportMetric(float64(s.Bus.Ordered())/float64(b.N), "ordered-reqs/op")
}
